//! `perf_guard` — the perf-regression gate of the CI guardrail job.
//!
//! Two modes:
//!
//! * **Baseline mode** (the default): compares a freshly generated
//!   `BENCH_PR2.json` (see `perf_report`) against the checked-in
//!   `BENCH_BASELINE.json` and fails (exit 1) when any guarded metric
//!   regressed beyond the relative tolerance. The guarded metrics are
//!   deliberately **machine-relative ratios**, not raw nanoseconds: both
//!   sides of each ratio are measured in the same process on the same host,
//!   so the comparison is stable across runner generations while still
//!   catching real regressions of the hot paths:
//!
//!   * `head_to_head.trial_scoring_48slots.speedup` — the allocation
//!     kernel's advantage over the naive trial scorer (higher is better);
//!   * `head_to_head.full_net_lengths.speedup` — the evaluation kernel's
//!     advantage over the naive full evaluation (higher is better);
//!   * `head_to_head.goodness_pass.ratio_vs_naive_eval` — the per-cell
//!     goodness pass cost relative to a naive full evaluation on the same
//!     host (lower is better).
//!
//! * **`--pr6` mode**: gates a fresh `BENCH_PR6.json` (the persistent-epoch
//!   snapshot) on absolute multi-core speedup floors — the fused windowed
//!   iteration must reach ≥ 2× on a 4-worker pool versus serial, and the
//!   exhaustive intra-rank path must not be slower than serial at 2 or 4
//!   chunks. On a host with fewer than 4 cores the gate skips with a
//!   notice instead of failing: the floors are statements about parallel
//!   hardware, and a single-core container can only honestly report ≈ 1×.
//!
//! * **`--pr7` mode**: gates a fresh `BENCH_PR7.json` (the bound-pruned
//!   allocation snapshot) — the pruned serial windowed iteration must be
//!   ≥ 1.3× faster than the legacy exhaustive arm of the same in-process
//!   A/B, and the two arms must have agreed bit for bit. Both arms run
//!   serially on the same host, so the ratio is machine-relative and —
//!   unlike `--pr6` — there is **no low-core skip**: a single-core runner
//!   is gated exactly like a 32-core one.
//!
//! Usage:
//!
//! ```text
//! perf_guard [--baseline BENCH_BASELINE.json] [--fresh BENCH_PR2.json]
//!            [--tolerance 0.25]
//! perf_guard --pr6 [--fresh BENCH_PR6.json]
//! perf_guard --pr7 [--fresh BENCH_PR7.json]
//! ```
//!
//! `--tolerance 0.25` (the default) fails on a > 25 % relative regression.
//! A metric missing from the *fresh* report is a failure (the gate must not
//! silently shrink); a metric missing from the *baseline* is skipped with a
//! notice, so new metrics can be introduced before the baseline is re-pinned.
//! Re-pin after an intentional perf change with:
//!
//! ```text
//! cargo run --release -p bench --bin perf_report -- --only pr2 --out BENCH_BASELINE.json
//! ```

use bench::json::Json;

/// Whether a guarded metric regresses when it moves up or down.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One guarded metric of the baseline gate: its dotted path in the report
/// and its direction.
const GUARDED: [(&str, Direction); 3] = [
    (
        "head_to_head.trial_scoring_48slots.speedup",
        Direction::HigherIsBetter,
    ),
    (
        "head_to_head.full_net_lengths.speedup",
        Direction::HigherIsBetter,
    ),
    (
        "head_to_head.goodness_pass.ratio_vs_naive_eval",
        Direction::LowerIsBetter,
    ),
];

/// The `--pr6` floors: minimum host parallelism for the gate to apply, the
/// fused windowed-iteration headline floor, and the intra-rank
/// no-slower-than-serial floor.
const PR6_MIN_HOST_PARALLELISM: f64 = 4.0;
const PR6_WINDOWED_FLOOR: f64 = 2.0;
const PR6_INTRA_RANK_FLOOR: f64 = 1.0;

/// The `--pr7` floor: the bound-pruned serial windowed iteration versus the
/// legacy exhaustive arm of the same in-process A/B. Machine-relative, so it
/// applies on every core count — there is no low-core skip.
const PR7_SERIAL_FLOOR: f64 = 1.3;

/// The outcome of one gate evaluation: every line to print (PASS, FAIL and
/// SKIP alike, in order) plus the counts the exit code derives from. Pure
/// data so the message content is unit-testable without files or exits.
struct GateOutcome {
    lines: Vec<String>,
    checked: usize,
    failures: usize,
}

impl GateOutcome {
    fn new() -> Self {
        GateOutcome {
            lines: Vec::new(),
            checked: 0,
            failures: 0,
        }
    }

    fn pass(&mut self, line: String) {
        self.checked += 1;
        self.lines.push(format!("  PASS {line}"));
    }

    fn fail(&mut self, line: String) {
        self.failures += 1;
        self.lines.push(format!("  FAIL {line}"));
    }

    fn skip(&mut self, line: String) {
        self.lines.push(format!("  SKIP {line}"));
    }
}

/// Evaluates the baseline gate: every guarded machine-relative ratio in
/// `fresh` against `baseline` under the relative `tolerance`.
fn evaluate_baseline_gate(baseline: &Json, fresh: &Json, tolerance: f64) -> GateOutcome {
    let mut outcome = GateOutcome::new();
    for (path, direction) in GUARDED {
        let Some(base) = baseline.number(path) else {
            outcome.skip(format!(
                "{path}: not in the baseline yet (re-pin to start guarding it)"
            ));
            continue;
        };
        let Some(current) = fresh.number(path) else {
            outcome.fail(format!("{path}: missing from the fresh report"));
            continue;
        };
        if !(base.is_finite() && current.is_finite()) || base <= 0.0 {
            outcome.fail(format!(
                "{path}: non-finite or non-positive values ({base} vs {current})"
            ));
            continue;
        }
        let (bound, ok, movement) = match direction {
            Direction::HigherIsBetter => {
                let bound = base * (1.0 - tolerance);
                (bound, current >= bound, "min allowed")
            }
            Direction::LowerIsBetter => {
                let bound = base * (1.0 + tolerance);
                (bound, current <= bound, "max allowed")
            }
        };
        if ok {
            outcome.pass(format!(
                "{path}: {current:.3} (baseline {base:.3}, {movement} {bound:.3})"
            ));
        } else {
            outcome.fail(format!(
                "{path}: {current:.3} regressed past {movement} {bound:.3} (baseline {base:.3})"
            ));
        }
    }
    outcome
}

/// Evaluates the `--pr6` persistent-epoch gate on a fresh `BENCH_PR6.json`.
///
/// Every failure line names the host parallelism and the pool/chunk
/// configuration of the offending run alongside the achieved-vs-required
/// ratio pair, so a red CI leg is diagnosable from the log alone.
fn evaluate_pr6_gate(report: &Json) -> GateOutcome {
    let mut outcome = GateOutcome::new();
    let Some(host) = report.number("host_parallelism") else {
        outcome.fail("host_parallelism: missing from the PR6 report".to_string());
        return outcome;
    };
    let workers = report.number("pool_workers").unwrap_or(4.0) as usize;
    if host < PR6_MIN_HOST_PARALLELISM {
        outcome.skip(format!(
            "persistent-epoch floors: host_parallelism={host} (detected via \
             std::thread::available_parallelism) is below the \
             {PR6_MIN_HOST_PARALLELISM} cores the floors assume — a \
             {host}-core host can only honestly report ≈ 1×; run on a \
             multi-core runner to gate"
        ));
        return outcome;
    }

    if report.get("bitwise_identical_across_configs") != Some(&Json::Bool(true)) {
        outcome.fail(format!(
            "bitwise_identical_across_configs: serial and threaded({workers}) \
             runs disagreed on host_parallelism={host} — determinism before \
             speed, fix this first"
        ));
    }

    let floors = [
        (
            "windowed_speedup_threaded4_vs_serial",
            PR6_WINDOWED_FLOOR,
            format!("threaded({workers},ev4) windowed iteration"),
        ),
        (
            "exhaustive_speedup_2_chunks_vs_serial",
            PR6_INTRA_RANK_FLOOR,
            format!("threaded({workers},ev2) exhaustive intra-rank path"),
        ),
        (
            "exhaustive_speedup_4_chunks_vs_serial",
            PR6_INTRA_RANK_FLOOR,
            format!("threaded({workers},ev4) exhaustive intra-rank path"),
        ),
    ];
    for (path, floor, config) in floors {
        let Some(speedup) = report.number(path) else {
            outcome.fail(format!(
                "{path}: missing from the PR6 report (host_parallelism={host}, {config})"
            ));
            continue;
        };
        if speedup.is_finite() && speedup >= floor {
            outcome.pass(format!(
                "{path}: {speedup:.2}x >= {floor:.2}x floor \
                 (host_parallelism={host}, {config})"
            ));
        } else {
            outcome.fail(format!(
                "{path}: {speedup:.2}x vs serial is below the {floor:.2}x floor \
                 (host_parallelism={host}, {config})"
            ));
        }
    }
    outcome
}

/// Evaluates the `--pr7` bound-pruned allocation gate on a fresh
/// `BENCH_PR7.json`.
///
/// Both arms of the A/B it gates ran serially in the same process, so the
/// speedup is machine-relative and the floor applies on **every** host —
/// deliberately no low-core skip, unlike [`evaluate_pr6_gate`]. Failure
/// lines still name the host parallelism so a red leg is diagnosable from
/// the log alone.
fn evaluate_pr7_gate(report: &Json) -> GateOutcome {
    let mut outcome = GateOutcome::new();
    let host = report.number("host_parallelism").unwrap_or(0.0);
    if report.get("bitwise_identical_across_configs") != Some(&Json::Bool(true)) {
        outcome.fail(format!(
            "bitwise_identical_across_configs: the pruned and legacy \
             exhaustive serial arms disagreed on host_parallelism={host} — \
             determinism before speed, fix this first"
        ));
    }
    let Some(speedup) = report.number("windowed_serial_speedup_vs_legacy") else {
        outcome.fail(format!(
            "windowed_serial_speedup_vs_legacy: missing from the PR7 report \
             (host_parallelism={host})"
        ));
        return outcome;
    };
    if speedup.is_finite() && speedup >= PR7_SERIAL_FLOOR {
        outcome.pass(format!(
            "windowed_serial_speedup_vs_legacy: {speedup:.2}x >= \
             {PR7_SERIAL_FLOOR:.2}x floor (host_parallelism={host}, serial \
             windowed iteration; machine-relative, gated on every core count)"
        ));
    } else {
        outcome.fail(format!(
            "windowed_serial_speedup_vs_legacy: {speedup:.2}x vs the legacy \
             exhaustive arm is below the {PR7_SERIAL_FLOOR:.2}x floor \
             (host_parallelism={host}, serial windowed iteration; \
             machine-relative, so a low core count is no excuse)"
        ));
    }
    outcome
}

fn load(path: &str) -> Json {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("perf_guard: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("perf_guard: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

/// Prints an outcome's lines and exits non-zero on failures (or when a
/// non-skippable gate checked nothing at all).
fn finish(outcome: GateOutcome, empty_is_failure: bool, epilogue: &str) -> ! {
    for line in &outcome.lines {
        if line.trim_start().starts_with("FAIL") {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    if outcome.checked == 0 && outcome.failures == 0 && empty_is_failure {
        eprintln!("perf_guard: no guarded metric was checked — the gate compared nothing");
        std::process::exit(1);
    }
    if outcome.failures > 0 {
        eprintln!(
            "perf_guard: {} metric(s) failed; {epilogue}",
            outcome.failures
        );
        std::process::exit(1);
    }
    println!(
        "perf guard passed: {} metric(s) within bounds",
        outcome.checked
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "perf_guard [--baseline BENCH_BASELINE.json] [--fresh BENCH_PR2.json] [--tolerance 0.25]\n\
             perf_guard --pr6 [--fresh BENCH_PR6.json]\n\
             perf_guard --pr7 [--fresh BENCH_PR7.json]"
        );
        return;
    }
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };

    if args.iter().any(|a| a == "--pr7") {
        let fresh_path = arg("--fresh").unwrap_or_else(|| "BENCH_PR7.json".into());
        let fresh = load(&fresh_path);
        println!(
            "perf guard (pr7): {fresh_path} vs the bound-pruned allocation floor \
             (serial windowed >= {PR7_SERIAL_FLOOR}x over the legacy exhaustive arm; \
             machine-relative, no low-core skip)"
        );
        // The A/B is in-process and serial on both sides, so the gate must
        // always check something — an empty outcome is a failure.
        finish(
            evaluate_pr7_gate(&fresh),
            true,
            "the floor is machine-relative; investigate the pruned scan before re-running",
        );
    }

    if args.iter().any(|a| a == "--pr6") {
        let fresh_path = arg("--fresh").unwrap_or_else(|| "BENCH_PR6.json".into());
        let fresh = load(&fresh_path);
        println!(
            "perf guard (pr6): {fresh_path} vs the persistent-epoch floors \
             (windowed >= {PR6_WINDOWED_FLOOR}x, exhaustive >= {PR6_INTRA_RANK_FLOOR}x)"
        );
        // A sub-4-core host legitimately checks nothing (skip-with-notice).
        finish(
            evaluate_pr6_gate(&fresh),
            false,
            "the floors are absolute; investigate the scheduler before re-running",
        );
    }

    let baseline_path = arg("--baseline").unwrap_or_else(|| "BENCH_BASELINE.json".into());
    let fresh_path = arg("--fresh").unwrap_or_else(|| "BENCH_PR2.json".into());
    let tolerance: f64 = match arg("--tolerance") {
        None => 0.25,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t > 0.0 && t < 1.0 => t,
            _ => {
                eprintln!("perf_guard: --tolerance must be a fraction in (0, 1), got `{v}`");
                std::process::exit(2);
            }
        },
    };

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    println!(
        "perf guard: {fresh_path} vs {baseline_path} (relative tolerance {:.0} %)",
        tolerance * 100.0
    );
    let epilogue = format!(
        "regressed beyond {:.0} %; if intentional, re-pin BENCH_BASELINE.json (see --help)",
        tolerance * 100.0
    );
    finish(
        evaluate_baseline_gate(&baseline, &fresh, tolerance),
        true,
        &epilogue,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pr6_report(host: f64, windowed: f64, ev2: f64, ev4: f64) -> Json {
        Json::parse(&format!(
            r#"{{
                "report": "BENCH_PR6",
                "pool_workers": 4,
                "host_parallelism": {host},
                "bitwise_identical_across_configs": true,
                "windowed_speedup_threaded4_vs_serial": {windowed},
                "exhaustive_speedup_2_chunks_vs_serial": {ev2},
                "exhaustive_speedup_4_chunks_vs_serial": {ev4}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn pr6_gate_passes_on_a_fast_multicore_report() {
        let outcome = evaluate_pr6_gate(&pr6_report(8.0, 2.4, 1.3, 1.9));
        assert_eq!(outcome.failures, 0);
        assert_eq!(outcome.checked, 3);
        assert!(outcome.lines.iter().all(|l| l.contains("PASS")));
    }

    #[test]
    fn pr6_gate_skips_with_notice_below_four_cores() {
        let outcome = evaluate_pr6_gate(&pr6_report(1.0, 0.98, 0.97, 0.95));
        assert_eq!(outcome.failures, 0, "a 1-core host must not fail the gate");
        assert_eq!(outcome.checked, 0);
        let notice = &outcome.lines[0];
        assert!(notice.contains("SKIP"), "{notice}");
        assert!(
            notice.contains("host_parallelism=1"),
            "the notice must name the host parallelism: {notice}"
        );
        assert!(
            notice.contains("std::thread::available_parallelism"),
            "the notice must name where the core count came from: {notice}"
        );
    }

    #[test]
    fn pr6_failure_messages_name_host_config_and_ratio_pair() {
        let outcome = evaluate_pr6_gate(&pr6_report(8.0, 1.37, 1.3, 0.84));
        assert_eq!(outcome.failures, 2);
        assert_eq!(outcome.checked, 1);
        let windowed = outcome
            .lines
            .iter()
            .find(|l| l.contains("windowed_speedup_threaded4_vs_serial"))
            .unwrap();
        assert!(windowed.contains("FAIL"), "{windowed}");
        assert!(
            windowed.contains("host_parallelism=8"),
            "failure must name the host parallelism: {windowed}"
        );
        assert!(
            windowed.contains("threaded(4,ev4)"),
            "failure must name the worker/chunk config: {windowed}"
        );
        assert!(
            windowed.contains("1.37x") && windowed.contains("2.00x"),
            "failure must show the achieved-vs-required ratio pair: {windowed}"
        );
        let ev4 = outcome
            .lines
            .iter()
            .find(|l| l.contains("exhaustive_speedup_4_chunks_vs_serial"))
            .unwrap();
        assert!(
            ev4.contains("FAIL") && ev4.contains("0.84x") && ev4.contains("1.00x"),
            "{ev4}"
        );
    }

    #[test]
    fn pr6_gate_fails_on_a_bitwise_mismatch() {
        let mut report = pr6_report(8.0, 2.4, 1.3, 1.9);
        if let Json::Object(ref mut map) = report {
            map.insert("bitwise_identical_across_configs".into(), Json::Bool(false));
        }
        let outcome = evaluate_pr6_gate(&report);
        assert!(outcome.failures >= 1);
        let line = outcome
            .lines
            .iter()
            .find(|l| l.contains("bitwise_identical_across_configs"))
            .unwrap();
        assert!(
            line.contains("FAIL") && line.contains("determinism"),
            "{line}"
        );
    }

    fn pr7_report(host: f64, speedup: f64) -> Json {
        Json::parse(&format!(
            r#"{{
                "report": "BENCH_PR7",
                "host_parallelism": {host},
                "bitwise_identical_across_configs": true,
                "windowed_serial_speedup_vs_legacy": {speedup}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn pr7_gate_passes_on_a_fast_report() {
        let outcome = evaluate_pr7_gate(&pr7_report(8.0, 1.65));
        assert_eq!(outcome.failures, 0);
        assert_eq!(outcome.checked, 1);
        assert!(outcome.lines.iter().all(|l| l.contains("PASS")));
    }

    #[test]
    fn pr7_gate_has_no_low_core_skip() {
        // Machine-relative A/B: a single-core host is gated like any other —
        // passing when above the floor, failing when below, never skipping.
        let fast = evaluate_pr7_gate(&pr7_report(1.0, 1.62));
        assert_eq!(fast.failures, 0, "a 1-core host above the floor passes");
        assert_eq!(fast.checked, 1, "a 1-core host must still be checked");
        let slow = evaluate_pr7_gate(&pr7_report(1.0, 1.04));
        assert_eq!(slow.failures, 1, "a 1-core host below the floor fails");
        assert!(
            !slow.lines.iter().any(|l| l.contains("SKIP")),
            "the pr7 gate must never skip: {:?}",
            slow.lines
        );
    }

    #[test]
    fn pr7_failure_messages_name_host_floor_and_ratio() {
        let outcome = evaluate_pr7_gate(&pr7_report(2.0, 1.12));
        assert_eq!(outcome.failures, 1);
        let fail = outcome.lines.iter().find(|l| l.contains("FAIL")).unwrap();
        assert!(
            fail.contains("windowed_serial_speedup_vs_legacy")
                && fail.contains("host_parallelism=2")
                && fail.contains("1.12x")
                && fail.contains("1.30x"),
            "failure must name the host and the achieved-vs-required pair: {fail}"
        );
    }

    #[test]
    fn pr7_gate_fails_on_a_bitwise_mismatch() {
        let mut report = pr7_report(8.0, 1.65);
        if let Json::Object(ref mut map) = report {
            map.insert("bitwise_identical_across_configs".into(), Json::Bool(false));
        }
        let outcome = evaluate_pr7_gate(&report);
        assert_eq!(outcome.failures, 1);
        let line = outcome
            .lines
            .iter()
            .find(|l| l.contains("bitwise_identical_across_configs"))
            .unwrap();
        assert!(
            line.contains("FAIL") && line.contains("determinism"),
            "{line}"
        );
    }

    #[test]
    fn pr7_gate_fails_on_a_missing_headline() {
        let report = Json::parse(
            r#"{"report": "BENCH_PR7", "host_parallelism": 4,
                "bitwise_identical_across_configs": true}"#,
        )
        .unwrap();
        let outcome = evaluate_pr7_gate(&report);
        assert_eq!(outcome.failures, 1, "a shrunken report must not pass");
        assert!(outcome.lines[0].contains("missing"), "{:?}", outcome.lines);
    }

    #[test]
    fn baseline_gate_messages_show_bound_and_baseline() {
        let baseline = Json::parse(
            r#"{"head_to_head": {
                "trial_scoring_48slots": {"speedup": 6.0},
                "full_net_lengths": {"speedup": 2.0},
                "goodness_pass": {"ratio_vs_naive_eval": 0.5}
            }}"#,
        )
        .unwrap();
        let fresh = Json::parse(
            r#"{"head_to_head": {
                "trial_scoring_48slots": {"speedup": 4.0},
                "full_net_lengths": {"speedup": 1.9},
                "goodness_pass": {"ratio_vs_naive_eval": 0.52}
            }}"#,
        )
        .unwrap();
        let outcome = evaluate_baseline_gate(&baseline, &fresh, 0.25);
        assert_eq!(outcome.failures, 1, "only trial scoring fell past 25 %");
        assert_eq!(outcome.checked, 2);
        let fail = outcome.lines.iter().find(|l| l.contains("FAIL")).unwrap();
        assert!(
            fail.contains("trial_scoring_48slots")
                && fail.contains("4.000")
                && fail.contains("4.500")
                && fail.contains("baseline 6.000"),
            "failure must show current, bound and baseline: {fail}"
        );
    }

    #[test]
    fn baseline_gate_skips_unpinned_metrics_and_fails_missing_fresh_ones() {
        let baseline =
            Json::parse(r#"{"head_to_head": {"trial_scoring_48slots": {"speedup": 6.0}}}"#)
                .unwrap();
        let fresh = Json::parse(r#"{"head_to_head": {}}"#).unwrap();
        let outcome = evaluate_baseline_gate(&baseline, &fresh, 0.25);
        assert_eq!(outcome.failures, 1, "pinned metric missing from fresh");
        assert_eq!(outcome.checked, 0);
        assert_eq!(
            outcome.lines.iter().filter(|l| l.contains("SKIP")).count(),
            2,
            "unpinned metrics skip with a notice"
        );
    }
}
