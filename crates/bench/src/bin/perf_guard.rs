//! `perf_guard` — the perf-regression gate of the CI guardrail job.
//!
//! Compares a freshly generated `BENCH_PR2.json` (see `perf_report`) against
//! the checked-in `BENCH_BASELINE.json` and fails (exit 1) when any guarded
//! metric regressed beyond the relative tolerance.
//!
//! The guarded metrics are deliberately **machine-relative ratios**, not raw
//! nanoseconds: both sides of each ratio are measured in the same process on
//! the same host, so the comparison is stable across runner generations while
//! still catching real regressions of the hot paths:
//!
//! * `head_to_head.trial_scoring_48slots.speedup` — the allocation kernel's
//!   advantage over the naive trial scorer (higher is better);
//! * `head_to_head.full_net_lengths.speedup` — the evaluation kernel's
//!   advantage over the naive full evaluation (higher is better);
//! * `head_to_head.goodness_pass.ratio_vs_naive_eval` — the per-cell goodness
//!   pass cost relative to a naive full evaluation on the same host (lower is
//!   better).
//!
//! Usage:
//!
//! ```text
//! perf_guard [--baseline BENCH_BASELINE.json] [--fresh BENCH_PR2.json]
//!            [--tolerance 0.25]
//! ```
//!
//! `--tolerance 0.25` (the default) fails on a > 25 % relative regression.
//! A metric missing from the *fresh* report is a failure (the gate must not
//! silently shrink); a metric missing from the *baseline* is skipped with a
//! notice, so new metrics can be introduced before the baseline is re-pinned.
//! Re-pin after an intentional perf change with:
//!
//! ```text
//! cargo run --release -p bench --bin perf_report -- --only pr2 --out BENCH_BASELINE.json
//! ```

use bench::json::Json;

/// Whether a guarded metric regresses when it moves up or down.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One guarded metric: its dotted path in the report and its direction.
const GUARDED: [(&str, Direction); 3] = [
    (
        "head_to_head.trial_scoring_48slots.speedup",
        Direction::HigherIsBetter,
    ),
    (
        "head_to_head.full_net_lengths.speedup",
        Direction::HigherIsBetter,
    ),
    (
        "head_to_head.goodness_pass.ratio_vs_naive_eval",
        Direction::LowerIsBetter,
    ),
];

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_guard: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("perf_guard: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "perf_guard [--baseline BENCH_BASELINE.json] [--fresh BENCH_PR2.json] [--tolerance 0.25]"
        );
        return;
    }
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let baseline_path = arg("--baseline").unwrap_or_else(|| "BENCH_BASELINE.json".into());
    let fresh_path = arg("--fresh").unwrap_or_else(|| "BENCH_PR2.json".into());
    let tolerance: f64 = match arg("--tolerance") {
        None => 0.25,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t > 0.0 && t < 1.0 => t,
            _ => {
                eprintln!("perf_guard: --tolerance must be a fraction in (0, 1), got `{v}`");
                std::process::exit(2);
            }
        },
    };

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    println!(
        "perf guard: {fresh_path} vs {baseline_path} (relative tolerance {:.0} %)",
        tolerance * 100.0
    );

    let mut failures = 0usize;
    let mut checked = 0usize;
    for (path, direction) in GUARDED {
        let Some(base) = baseline.number(path) else {
            println!("  SKIP {path}: not in the baseline yet (re-pin to start guarding it)");
            continue;
        };
        let Some(current) = fresh.number(path) else {
            eprintln!("  FAIL {path}: missing from the fresh report");
            failures += 1;
            continue;
        };
        if !(base.is_finite() && current.is_finite()) || base <= 0.0 {
            eprintln!("  FAIL {path}: non-finite or non-positive values ({base} vs {current})");
            failures += 1;
            continue;
        }
        checked += 1;
        let (bound, ok, movement) = match direction {
            Direction::HigherIsBetter => {
                let bound = base * (1.0 - tolerance);
                (bound, current >= bound, "min allowed")
            }
            Direction::LowerIsBetter => {
                let bound = base * (1.0 + tolerance);
                (bound, current <= bound, "max allowed")
            }
        };
        if ok {
            println!("  PASS {path}: {current:.3} (baseline {base:.3}, {movement} {bound:.3})");
        } else {
            eprintln!("  FAIL {path}: {current:.3} regressed past {movement} {bound:.3} (baseline {base:.3})");
            failures += 1;
        }
    }

    if checked == 0 && failures == 0 {
        eprintln!(
            "perf_guard: no guarded metric was present in the baseline — the gate compared nothing"
        );
        std::process::exit(1);
    }
    if failures > 0 {
        eprintln!(
            "perf_guard: {failures} metric(s) regressed beyond {:.0} %; if intentional, re-pin \
             BENCH_BASELINE.json (see --help)",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("perf guard passed: {checked} metric(s) within tolerance");
}
