//! `scenario_matrix` — executes the scenario cross-product
//! `{circuit × strategy Type I/II (both row patterns)/III + island
//! portfolios × backend Modeled/Threaded × worker count × objective mix}`
//! through the reusable batch driver of
//! `sime_parallel::batch`, emitting one JSON record per cell and verifying
//! the determinism contract (equal golden fingerprints across every backend
//! and worker count of a cell) as it goes.
//!
//! Usage:
//!
//! ```text
//! scenario_matrix [--quick | --full] [--circuits a,b,c] [--iterations N]
//!                 [--workers 1,2,4] [--out PATH]
//!                 [--bless DIR] [--check DIR] [--golden-subset]
//! ```
//!
//! * `--quick` (default) — the 5 paper circuits plus the two smallest
//!   extended circuits (`s5378`, `s9234`), the 4 matrix strategies plus the
//!   portfolio sweep, Modeled + Threaded{1,2,4}, wirelength+power everywhere
//!   plus the three-objective mix on the paper tier. Two probe cells ride
//!   along: a mixed-size cell (`mix600`, fixed pads + multi-row macros) and
//!   a warm-start cell (`s1196` replayed from the builtin round-robin `.pl`
//!   layout). Completes in a couple of minutes and is the grid CI archives
//!   on every push.
//! * `--full` — every suite circuit including the mixed-size tier, both
//!   objective mixes everywhere and a longer iteration budget. Mixed-size
//!   circuits skip the portfolio cells (the metaheuristic islands do not
//!   support fixed cells).
//! * `--circuits` — comma-separated override of the circuit axis.
//! * `--iterations` — override of the per-cell iteration budget.
//! * `--workers` — comma-separated Threaded worker counts (default `1,2,4`).
//! * `--out` — JSON report path (default `SCENARIO_MATRIX.json`).
//! * `--bless DIR` — write/update golden fingerprint files in `DIR` instead
//!   of comparing. With `--golden-subset` it blesses exactly the pinned
//!   subset the `golden_suite` test replays (this is how `tests/golden/` is
//!   regenerated after an intentional trajectory change).
//! * `--check DIR` — after the run, compare every scenario that has a golden
//!   file in `DIR` and exit non-zero on any mismatch.
//!
//! The binary exits non-zero if any cell's fingerprint differs across
//! backends/worker counts (a determinism-contract violation) or if a
//! `--check` comparison fails.

use sime_parallel::batch::{
    golden_subset, objectives_tag, BatchDriver, ScenarioRecord, ScenarioSpec, StrategyKind,
    TrajectoryFingerprint,
};
use sime_parallel::portfolio::PortfolioMix;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use vlsi_netlist::bench_suite::{ExtendedCircuit, MixedCircuit, PaperCircuit, SuiteCircuit};
use vlsi_place::cost::Objectives;

/// The worker-count axis parsed from `--workers`. A malformed or zero
/// entry is a hard error — silently dropping it would shrink the
/// determinism sweep while looking fully configured.
fn parse_workers(arg: Option<String>) -> Vec<usize> {
    let Some(list) = arg else {
        return vec![1, 2, 4];
    };
    let workers: Vec<usize> = list
        .split(',')
        .map(|t| match t.trim().parse::<usize>() {
            Ok(w) if w >= 1 => w,
            _ => {
                eprintln!(
                    "--workers: invalid worker count `{}` (need integers >= 1)",
                    t.trim()
                );
                std::process::exit(2);
            }
        })
        .collect();
    if workers.is_empty() {
        eprintln!("--workers: empty worker list");
        std::process::exit(2);
    }
    workers
}

/// The circuit axis: `--circuits` override, else quick/full defaults.
fn circuit_axis(arg: Option<String>, full: bool) -> Vec<SuiteCircuit> {
    if let Some(list) = arg {
        return list
            .split(',')
            .map(|name| {
                SuiteCircuit::from_name(name.trim()).unwrap_or_else(|| {
                    eprintln!("unknown suite circuit `{}`", name.trim());
                    std::process::exit(2);
                })
            })
            .collect();
    }
    let mut axis: Vec<SuiteCircuit> = PaperCircuit::ALL
        .iter()
        .copied()
        .map(SuiteCircuit::Paper)
        .collect();
    if full {
        axis.extend(
            ExtendedCircuit::ALL
                .iter()
                .copied()
                .map(SuiteCircuit::Extended),
        );
        axis.extend(MixedCircuit::ALL.iter().copied().map(SuiteCircuit::Mixed));
    } else {
        axis.push(SuiteCircuit::Extended(ExtendedCircuit::S5378));
        axis.push(SuiteCircuit::Extended(ExtendedCircuit::S9234));
    }
    axis
}

/// Builds the grid of scenario specs (one per matrix cell, Modeled backend;
/// the runner fans each cell out across the backend axis itself).
fn build_grid(
    circuits: &[SuiteCircuit],
    iterations: Option<usize>,
    full: bool,
    probes: bool,
) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for &circuit in circuits {
        // Extended and mixed-size circuits get a smaller default budget: one
        // cell of the matrix is a smoke-scale probe, not a convergence run.
        let small_tier = circuit.is_extended() || circuit.is_mixed();
        let iters = iterations.unwrap_or(match (full, small_tier) {
            (false, false) => 6,
            (false, true) => 4,
            (true, false) => 12,
            (true, true) => 8,
        });
        let objective_axis: &[Objectives] = if full || !small_tier {
            &[
                Objectives::WirelengthPower,
                Objectives::WirelengthPowerDelay,
            ]
        } else {
            &[Objectives::WirelengthPower]
        };
        for &objectives in objective_axis {
            for strategy in StrategyKind::MATRIX {
                specs.push(ScenarioSpec {
                    circuit: circuit.name().to_string(),
                    strategy,
                    ranks: 4,
                    iterations: iters,
                    objectives,
                    workers: None,
                    eval_chunks: 1,
                    warm_start: None,
                });
            }
        }
        // Portfolio cells sweep the *island count* (2–5 ranks, the
        // composition cycles through the mix) on the paper tier, plus the
        // baselines-only composition at the standard rank count; extended
        // circuits get one probe per composition. WirelengthPower only —
        // the race varies the optimizer, not the objective mix. Mixed-size
        // circuits get no portfolio cells at all: the GA/SA/TS islands
        // relocate arbitrary cells, and the job runner rejects them on
        // fixed-cell circuits (`fixed_cells_unsupported`).
        if circuit.is_mixed() {
            continue;
        }
        let portfolio = |mix: PortfolioMix, ranks: usize| ScenarioSpec {
            circuit: circuit.name().to_string(),
            strategy: StrategyKind::Portfolio(mix),
            ranks,
            iterations: iters,
            objectives: Objectives::WirelengthPower,
            workers: None,
            eval_chunks: 1,
            warm_start: None,
        };
        if circuit.is_extended() {
            specs.push(portfolio(PortfolioMix::Mixed, 4));
            specs.push(portfolio(PortfolioMix::Baselines, 4));
        } else {
            for ranks in 2..=5 {
                specs.push(portfolio(PortfolioMix::Mixed, ranks));
            }
            specs.push(portfolio(PortfolioMix::Baselines, 4));
        }
    }
    if probes {
        // Two probes that ride every default grid (quick included) beyond
        // the plain circuit × strategy product: a mixed-size cell that puts
        // the blocked-span allocator and the fixed-cell frozen mask on the
        // per-push determinism sweep, and a warm-start cell replayed from
        // the builtin round-robin `.pl` layout so the Bookshelf interchange
        // path is exercised on every run. Both literals mirror the pinned
        // entries in `golden_subset()` (same ids), so `--check tests/golden`
        // compares them against the registry instead of skipping them.
        let probe = |circuit: &str, strategy, iterations, warm_start| ScenarioSpec {
            circuit: circuit.to_string(),
            strategy,
            ranks: 3,
            iterations,
            objectives: Objectives::WirelengthPower,
            workers: None,
            eval_chunks: 1,
            warm_start,
        };
        let mixed = probe(
            "mix600",
            StrategyKind::Type2(sime_parallel::RowPattern::Random),
            4,
            None,
        );
        let warm = probe("s1196", StrategyKind::Type1, 5, Some("rr".to_string()));
        for cell in [mixed, warm] {
            if !specs.iter().any(|s| s.id() == cell.id()) {
                specs.push(cell);
            }
        }
    }
    specs
}

/// Whether the backend sweep adds an intra-rank-parallel run for this cell:
/// one `EvalParallelism` cell per extended circuit (the tier where the
/// intra-rank fan-out has real work to chunk), on the cheapest strategy mix.
fn wants_intra_rank_cell(spec: &ScenarioSpec) -> bool {
    SuiteCircuit::from_name(&spec.circuit).is_some_and(|c| c.is_extended())
        && spec.strategy == StrategyKind::Type2(sime_parallel::RowPattern::Random)
        && spec.objectives == Objectives::WirelengthPower
}

/// Runs one cell across the whole backend axis — Modeled, Threaded at each
/// worker count, plus (for the designated extended-tier cells) one
/// intra-rank-parallel run — asserting fingerprint equality throughout, and
/// returns the records (Modeled first).
fn run_cell_all_backends(
    driver: &mut BatchDriver,
    spec: &ScenarioSpec,
    workers: &[usize],
    eval_chunks: usize,
) -> (Vec<ScenarioRecord>, bool) {
    let mut records = Vec::with_capacity(2 + workers.len());
    let modeled = driver.run_cell(spec);
    let mut stable = true;
    for &w in workers {
        let threaded = driver.run_cell(&spec.on_workers(Some(w)));
        if threaded.fingerprint != modeled.fingerprint {
            eprintln!(
                "DETERMINISM VIOLATION: {} differs between modeled and threaded({w})",
                spec.id()
            );
            stable = false;
        }
        records.push(threaded);
    }
    if eval_chunks > 1 && wants_intra_rank_cell(spec) {
        // Two pool workers are enough to exercise the nested fan-out; more
        // only changes wall-clock.
        let workers = workers.iter().copied().max().unwrap_or(1).min(2);
        let intra = driver.run_cell(&spec.on_workers(Some(workers)).with_eval_chunks(eval_chunks));
        if intra.fingerprint != modeled.fingerprint {
            eprintln!(
                "DETERMINISM VIOLATION: {} differs between modeled and {}",
                spec.id(),
                intra.outcome.backend
            );
            stable = false;
        }
        records.push(intra);
    }
    records.insert(0, modeled);
    (records, stable)
}

fn bless(dir: &Path, driver: &mut BatchDriver, specs: &[ScenarioSpec]) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    });
    let expected: Vec<String> = specs.iter().map(|s| format!("{}.golden", s.id())).collect();
    for spec in specs {
        let record = driver.run_cell(spec);
        let path = dir.join(format!("{}.golden", spec.id()));
        // Diff-and-explain before overwriting: an intentional re-bless must
        // document which fingerprint fields moved (old vs new bits), not
        // silently replace the pinned trajectory.
        match std::fs::read_to_string(&path) {
            Ok(old_text) => match TrajectoryFingerprint::parse_text(&old_text) {
                Ok((_, old)) => {
                    let changes = old.diff(&record.fingerprint);
                    if changes.is_empty() {
                        println!("unchanged {}", path.display());
                        continue;
                    }
                    println!(
                        "re-blessing {} ({} field(s) changed):",
                        path.display(),
                        changes.len()
                    );
                    for line in &changes {
                        println!("    {line}");
                    }
                }
                Err(e) => println!("re-blessing {} (old file unparsable: {e})", path.display()),
            },
            Err(_) => println!("new golden {}", path.display()),
        }
        std::fs::write(&path, record.fingerprint.to_text(spec)).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("blessed {}", path.display());
    }
    // Remove stale goldens so shrinking/renaming the blessed set cannot
    // leave orphan files that fail the registry-sync test forever.
    for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".golden") && !expected.iter().any(|e| e == &name) {
            std::fs::remove_file(&path).unwrap_or_else(|e| {
                eprintln!("cannot remove stale golden {}: {e}", path.display());
                std::process::exit(2);
            });
            println!("removed stale {}", path.display());
        }
    }
}

/// Compares every run scenario that has a golden file in `dir`; returns the
/// number of failures. The comparison itself (including the hard failures on
/// a missing golden *directory* or an empty intersection) lives in
/// [`sime_parallel::batch::check_goldens`] so the server suite and this
/// binary share one gate; this wrapper only does the I/O.
fn check_against_goldens(dir: &Path, by_id: &BTreeMap<String, TrajectoryFingerprint>) -> usize {
    let check = sime_parallel::batch::check_goldens(dir, by_id);
    for failure in &check.failures {
        eprintln!("--check: {failure}");
    }
    println!(
        "checked {} scenarios against goldens in {}",
        check.checked,
        dir.display()
    );
    check.failures.len()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Reject unknown flags up front: a typo like `--ful` must not silently
    // run a different grid than the one asked for.
    const VALUE_FLAGS: [&str; 7] = [
        "--circuits",
        "--iterations",
        "--workers",
        "--eval-chunks",
        "--out",
        "--bless",
        "--check",
    ];
    const BOOL_FLAGS: [&str; 5] = ["--quick", "--full", "--golden-subset", "--help", "-h"];
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2; // the value (validated below) belongs to the flag
        } else if BOOL_FLAGS.contains(&a.as_str()) {
            i += 1;
        } else {
            eprintln!("unknown argument `{a}` (see --help)");
            std::process::exit(2);
        }
    }
    let flag = |name: &str| args.iter().any(|a| a == name);
    // A flag that takes a value must be followed by a non-flag token;
    // `--bless --golden-subset` (missing directory) is an error, not a
    // directory named `--golden-subset`.
    let value = |name: &str| {
        let i = args.iter().position(|a| a == name)?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v.clone()),
            _ => {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            }
        }
    };
    if flag("--help") || flag("-h") {
        println!(
            "scenario_matrix [--quick | --full] [--circuits a,b,c] [--iterations N]\n\
             \x20               [--workers 1,2,4] [--eval-chunks N] [--out PATH]\n\
             \x20               [--bless DIR] [--check DIR] [--golden-subset]\n\
             \n\
             --eval-chunks N sets the intra-rank EvalParallelism of the one\n\
             intra-rank cell the sweep adds per extended circuit (default 2;\n\
             0 disables the intra-rank runs)."
        );
        return;
    }

    let full = flag("--full");
    let out_path = value("--out").unwrap_or_else(|| "SCENARIO_MATRIX.json".into());
    let workers = parse_workers(value("--workers"));
    let eval_chunks = match value("--eval-chunks") {
        None => 2,
        Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--eval-chunks: invalid chunk count `{v}` (need an integer >= 0)");
            std::process::exit(2);
        }),
    };
    let iterations = value("--iterations").map(|v| match v.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--iterations: invalid iteration count `{v}` (need an integer >= 1)");
            std::process::exit(2);
        }
    });

    let mut driver = BatchDriver::new();

    if let Some(dir) = value("--bless") {
        let specs = if flag("--golden-subset") {
            golden_subset()
        } else {
            let probes = value("--circuits").is_none();
            build_grid(
                &circuit_axis(value("--circuits"), full),
                iterations,
                full,
                probes,
            )
        };
        bless(&PathBuf::from(dir), &mut driver, &specs);
        return;
    }

    let circuits = circuit_axis(value("--circuits"), full);
    let mut grid = build_grid(&circuits, iterations, full, value("--circuits").is_none());
    if value("--circuits").is_none() {
        // Fold the pinned golden subset into the grid so `--check
        // tests/golden` always has cells to compare against the registry.
        for spec in golden_subset() {
            if !grid.iter().any(|s| s.id() == spec.id()) {
                grid.push(spec);
            }
        }
    }
    let grid = grid;
    println!(
        "scenario matrix: {} circuits × strategies/objectives = {} cells, backends = modeled + \
         threaded{:?}{}",
        circuits.len(),
        grid.len(),
        workers,
        if eval_chunks > 1 {
            format!(" + intra-rank ev{eval_chunks} on extended-tier cells")
        } else {
            String::new()
        }
    );

    let started = std::time::Instant::now();
    let mut rows = Vec::new();
    let mut by_id: BTreeMap<String, TrajectoryFingerprint> = BTreeMap::new();
    let mut all_stable = true;
    for (i, spec) in grid.iter().enumerate() {
        let (records, stable) = run_cell_all_backends(&mut driver, spec, &workers, eval_chunks);
        all_stable &= stable;
        println!(
            "[{}/{}] {} µ={:.4} modeled={:.1}s {}",
            i + 1,
            grid.len(),
            spec.id(),
            records[0].outcome.best_cost.mu,
            records[0].outcome.modeled_seconds,
            if stable { "stable" } else { "UNSTABLE" }
        );
        by_id.insert(spec.id(), records[0].fingerprint.clone());
        for r in &records {
            rows.push(format!("    {}", r.to_json()));
        }
    }

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"report\": \"SCENARIO_MATRIX\",\n  \"mode\": \"{mode}\",\n  \"cells\": {cells},\n  \"runs\": {runs},\n  \"threaded_workers\": {workers:?},\n  \"fingerprints_stable_across_backends_and_workers\": {stable},\n  \"wall_seconds_total\": {wall:.1},\n  \"records\": [\n{rows}\n  ]\n}}\n",
        mode = if full { "full" } else { "quick" },
        cells = grid.len(),
        runs = rows.len(),
        workers = workers,
        stable = all_stable,
        wall = started.elapsed().as_secs_f64(),
        rows = rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path} ({} records)", rows.len());

    let mut failed = !all_stable;
    if let Some(dir) = value("--check") {
        failed |= check_against_goldens(&PathBuf::from(dir), &by_id) > 0;
    }
    if failed {
        eprintln!("scenario_matrix FAILED (determinism violation or golden mismatch)");
        std::process::exit(1);
    }
    // A tiny self-describing summary per objective mix, for humans.
    let mut per_tag: BTreeMap<&str, usize> = BTreeMap::new();
    for spec in &grid {
        *per_tag.entry(objectives_tag(spec.objectives)).or_default() += 1;
    }
    println!(
        "done: {} cells ({}) in {:.1}s, fingerprints stable across modeled/threaded×{:?}",
        grid.len(),
        per_tag
            .iter()
            .map(|(t, n)| format!("{n} {t}"))
            .collect::<Vec<_>>()
            .join(", "),
        started.elapsed().as_secs_f64(),
        workers
    );
}
