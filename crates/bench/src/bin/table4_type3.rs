//! Experiment E4 — reproduces Table 4: Type III (cooperating parallel
//! searches) on s1494 and s1238, retry thresholds 50/100/150/200, p = 3..5.
//!
//! Both the serial run and every worker run 2500 iterations from the same
//! initial solution with different random seeds. The expected shape is that
//! the parallel runtimes deviate little from the serial runtime (there is no
//! workload division) while the reached quality is at or above the serial
//! quality, more reliably so for larger retry thresholds.
//!
//! Usage: `cargo run --release -p bench --bin table4_type3 [--full]`

use bench::{fmt_seconds, iteration_scale, paper_engine, print_header, scaled_iterations};
use cluster_sim::timeline::ClusterConfig;
use sime_parallel::report::run_serial_baseline;
use sime_parallel::type3::{run_type3, Type3Config};
use vlsi_netlist::bench_suite::PaperCircuit;
use vlsi_place::cost::Objectives;

fn main() {
    let scale = iteration_scale();
    print_header(
        "Table 4 — Type III parallel SimE (cooperating searches), wirelength + power",
        scale,
    );
    let circuits = [PaperCircuit::S1494, PaperCircuit::S1238];
    let retries_paper = [50usize, 100, 150, 200];

    println!(
        "\n{:<8} {:>7} {:>8} {:>7} {:>10} {:>10} {:>10}",
        "Ckt", "mu(s)", "Seq.", "Retry", "p=3", "p=4", "p=5"
    );
    for circuit in circuits {
        let iterations = scaled_iterations(2500, scale);
        let engine = paper_engine(circuit, Objectives::WirelengthPower, iterations);
        let compute = ClusterConfig::paper_cluster(3).compute;
        let baseline = run_serial_baseline(&engine, &compute);

        for (i, &retry_paper) in retries_paper.iter().enumerate() {
            let retry = ((retry_paper as f64 * scale).round() as usize).max(2);
            let mut row = if i == 0 {
                format!(
                    "{:<8} {:>7.3} {:>8} {:>7}",
                    circuit.name(),
                    baseline.best_mu(),
                    fmt_seconds(baseline.modeled_seconds),
                    retry_paper
                )
            } else {
                format!("{:<8} {:>7} {:>8} {:>7}", "", "", "", retry_paper)
            };
            for ranks in 3..=5usize {
                let outcome = run_type3(
                    &engine,
                    ClusterConfig::paper_cluster(ranks),
                    Type3Config {
                        ranks,
                        iterations,
                        retry_threshold: retry,
                    },
                );
                let marker = if outcome.best_mu() >= baseline.best_mu() - 1e-9 {
                    "*"
                } else {
                    ""
                };
                row.push_str(&format!(
                    " {:>9}{}",
                    fmt_seconds(outcome.modeled_seconds),
                    marker
                ));
            }
            println!("{row}");
        }
    }
    println!("\n'*' marks configurations whose best quality matched or exceeded the serial run.");
    println!("expected shape: parallel runtimes stay close to the serial runtime at every p and");
    println!("retry value; larger retry thresholds tend to match/exceed the serial quality.");
    println!("paper reference (s1238): seq 72 s; parallel 60–71 s across retry values and p");
}
