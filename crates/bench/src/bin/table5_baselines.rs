//! Experiment E5 (extension) — quality comparison of SimE against the SA, GA
//! and TS baselines on the same multiobjective cost model.
//!
//! Section 7 of the paper mentions that the authors also implemented parallel
//! SA, GA and TS for the same problem; this binary provides the serial
//! quality/effort comparison that grounds that discussion: each heuristic is
//! given a comparable budget of cost evaluations on each circuit and the
//! reached quality µ(s) is reported.
//!
//! Usage: `cargo run --release -p bench --bin table5_baselines [--full]`

use bench::{iteration_scale, paper_engine, print_header, scaled_iterations};
use metaheuristics::ga::{GaConfig, GeneticPlacer};
use metaheuristics::sa::{SaConfig, SimulatedAnnealingPlacer};
use metaheuristics::tabu::{TabuConfig, TabuSearchPlacer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vlsi_netlist::bench_suite::PaperCircuit;
use vlsi_place::cost::Objectives;
use vlsi_place::layout::Placement;

fn main() {
    let scale = iteration_scale();
    print_header(
        "Baseline comparison — SimE vs SA vs GA vs TS (wirelength + power quality µ(s))",
        scale,
    );

    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>10}",
        "Ckt", "SimE", "SA", "GA", "TS"
    );
    for circuit in [
        PaperCircuit::S1196,
        PaperCircuit::S1238,
        PaperCircuit::S1494,
    ] {
        let iterations = scaled_iterations(1500, scale);
        let engine = paper_engine(circuit, Objectives::WirelengthPower, iterations);
        let evaluator = engine.evaluator().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let initial = Placement::random(evaluator.netlist(), circuit.num_rows(), &mut rng);

        let sime = engine.run();

        let sa = SimulatedAnnealingPlacer::new(
            evaluator.clone(),
            SaConfig {
                temperature_steps: scaled_iterations(80, scale.max(0.2)),
                moves_per_temperature: 150,
                seed: 7,
                ..Default::default()
            },
        )
        .run(initial.clone());

        let ga = GeneticPlacer::new(
            evaluator.clone(),
            GaConfig {
                generations: scaled_iterations(600, scale.max(0.2)),
                population: 20,
                num_rows: circuit.num_rows(),
                seed: 7,
                ..Default::default()
            },
        )
        .run(initial.clone());

        let ts = TabuSearchPlacer::new(
            evaluator.clone(),
            TabuConfig {
                iterations: scaled_iterations(400, scale.max(0.2)),
                seed: 7,
                ..Default::default()
            },
        )
        .run(initial);

        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            circuit.name(),
            sime.best_cost.mu,
            sa.best_mu(),
            ga.best_mu(),
            ts.best_mu()
        );
    }
    println!("\nexpected shape: SimE reaches qualities comparable to (or better than) the");
    println!("move-based baselines under a comparable evaluation budget — the premise of the");
    println!("paper's Section 7 comparison of parallelization behaviours.");
}
