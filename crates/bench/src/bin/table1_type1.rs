//! Experiment E1 — reproduces Table 1: Type I (low-level) parallel SimE.
//!
//! For every benchmark circuit the binary reports the modeled serial runtime
//! and the modeled Type I parallel runtime for p = 2..5 processors on the
//! simulated fast-Ethernet cluster. The expected shape (and the paper's
//! finding) is that the parallel runtimes are *at or above* the serial
//! runtime and roughly flat in the processor count: the allocation operator,
//! which dominates the runtime, is not distributed, and the per-iteration
//! broadcast/gather overhead cancels the small evaluation speed-up.
//!
//! Usage: `cargo run --release -p bench --bin table1_type1 [--full]`

use bench::{fmt_seconds, iteration_scale, paper_engine, print_header, scaled_iterations};
use cluster_sim::timeline::ClusterConfig;
use sime_parallel::report::run_serial_baseline;
use sime_parallel::type1::{run_type1, Type1Config};
use vlsi_netlist::bench_suite::PaperCircuit;
use vlsi_place::cost::Objectives;

fn main() {
    let scale = iteration_scale();
    print_header("Table 1 — Type I parallel SimE (wirelength + power)", scale);
    // The paper runs the two-objective optimiser; Table 1 lists runtimes only
    // because the Type I search trajectory is identical to the serial one.
    let paper_serial_iterations = 3500;

    println!(
        "\n{:<8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Ckt", "Cells", "Seq.", "p=2", "p=3", "p=4", "p=5"
    );
    for circuit in PaperCircuit::ALL {
        let iterations = scaled_iterations(paper_serial_iterations, scale);
        let engine = paper_engine(circuit, Objectives::WirelengthPower, iterations);
        let cluster1 = ClusterConfig::paper_cluster(2);
        let baseline = run_serial_baseline(&engine, &cluster1.compute);

        let mut row = format!(
            "{:<8} {:>6} {:>9}",
            circuit.name(),
            circuit.cell_count(),
            fmt_seconds(baseline.modeled_seconds)
        );
        for ranks in 2..=5usize {
            let outcome = run_type1(
                &engine,
                ClusterConfig::paper_cluster(ranks),
                Type1Config { ranks, iterations },
            );
            row.push_str(&format!(" {:>9}", fmt_seconds(outcome.modeled_seconds)));
        }
        println!("{row}");
    }
    println!(
        "\nexpected shape: every parallel column >= the serial column and roughly flat across p"
    );
    println!("paper reference (s1196): seq 92 s, parallel 130 s at every p");
}
