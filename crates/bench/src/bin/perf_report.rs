//! `perf_report` — machine-readable performance snapshots of the SimE hot
//! paths, written as JSON so CI can archive the perf trajectory PR over PR.
//!
//! Two reports per invocation:
//!
//! * `BENCH_PR2.json` — the operator snapshot: a handful of full SimE
//!   iterations on the paper's `s1196` circuit plus naive-vs-kernel
//!   head-to-heads, with per-phase wall-clock nanoseconds, deterministic
//!   work counts and derived net-evaluations/second rates.
//! * `BENCH_PR3.json` — the execution-backend scaling snapshot: the
//!   `parallel_scaling` matrix (Type III at p = 5, Type II random at p = 4)
//!   on the `Modeled` backend and the `Threaded` backend at 1, 2 and 4 OS
//!   workers, with measured wall-clock per run, the speedup of 4 workers
//!   over 1, the host's available parallelism (the speedup ceiling — on a
//!   single-core host the honest number is ~1×), and a cross-check that
//!   every backend/worker-count produced bitwise-identical results.
//!
//! Usage:
//! `perf_report [--only pr2|pr3] [--out PATH] [--out3 PATH] [--iters N] [--scaling-iters N]`
//! (defaults: both reports, `BENCH_PR2.json`, `BENCH_PR3.json`, 10 and 8
//! iterations; `--only` lets a CI job generate just the half it archives).

use cluster_sim::timeline::ClusterConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_core::profile::{Phase, ProfileReport};
use sime_parallel::exec::{ExecBackend, Modeled, Threaded};
use sime_parallel::type2::{run_type2_on, RowPattern, Type2Config};
use sime_parallel::type3::{run_type3_on, Type3Config};
use sime_parallel::StrategyOutcome;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_place::cost::Objectives;
use vlsi_place::kernel::{NetLengthCache, TrialScorer};
use vlsi_place::layout::Slot;

/// Times `f` over `reps` repetitions and returns total nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos()
}

fn evals_per_sec(net_evals: u64, total_ns: u128) -> f64 {
    if total_ns == 0 {
        0.0
    } else {
        net_evals as f64 / (total_ns as f64 / 1e9)
    }
}

/// Runs the parallel-scaling matrix and assembles the `BENCH_PR3` JSON:
/// wall-clock per (strategy, backend, workers) cell — best of `reps`
/// repetitions — plus speedups and the bitwise cross-backend check.
fn parallel_scaling_report(iters: usize) -> String {
    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iters);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    const REPS: usize = 3;

    let backends: Vec<(String, u64, Box<dyn ExecBackend>)> = vec![
        ("modeled".into(), 0, Box::new(Modeled)),
        ("threaded".into(), 1, Box::new(Threaded::new(1))),
        ("threaded".into(), 2, Box::new(Threaded::new(2))),
        ("threaded".into(), 4, Box::new(Threaded::new(4))),
    ];
    let strategies: Vec<(&str, Box<dyn Fn(&dyn ExecBackend) -> StrategyOutcome>)> = vec![
        (
            "type3_p5",
            Box::new(|backend: &dyn ExecBackend| {
                run_type3_on(
                    &engine,
                    ClusterConfig::paper_cluster(5),
                    Type3Config {
                        ranks: 5,
                        iterations: iters,
                        retry_threshold: 5,
                    },
                    backend,
                )
            }),
        ),
        (
            "type2_random_p4",
            Box::new(|backend: &dyn ExecBackend| {
                run_type2_on(
                    &engine,
                    ClusterConfig::paper_cluster(4),
                    Type2Config {
                        ranks: 4,
                        iterations: iters,
                        pattern: RowPattern::Random,
                    },
                    backend,
                )
            }),
        ),
    ];

    let mut rows = String::new();
    let mut bitwise_ok = true;
    let mut speedup_4v1 = f64::NAN;
    for (si, (name, run)) in strategies.iter().enumerate() {
        let mut reference: Option<StrategyOutcome> = None;
        let mut wall_w1 = 0u128;
        for (bi, (backend_name, workers, backend)) in backends.iter().enumerate() {
            let mut best_ns = u128::MAX;
            let mut outcome = None;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let o = run(backend.as_ref());
                best_ns = best_ns.min(t0.elapsed().as_nanos());
                outcome = Some(o);
            }
            let outcome = outcome.expect("at least one rep ran");
            match &reference {
                None => reference = Some(outcome.clone()),
                Some(r) => {
                    bitwise_ok &= r.best_cost.mu.to_bits() == outcome.best_cost.mu.to_bits()
                        && r.modeled_seconds.to_bits() == outcome.modeled_seconds.to_bits()
                        && r.mu_history.len() == outcome.mu_history.len()
                        && r.mu_history
                            .iter()
                            .zip(&outcome.mu_history)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                }
            }
            if *workers == 1 {
                wall_w1 = best_ns;
            }
            let speedup_vs_w1 = if *workers >= 1 && wall_w1 > 0 {
                wall_w1 as f64 / best_ns as f64
            } else {
                f64::NAN
            };
            if si == 0 && *workers == 4 && wall_w1 > 0 {
                speedup_4v1 = wall_w1 as f64 / best_ns as f64;
            }
            if si > 0 || bi > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"strategy\": \"{name}\", \"backend\": \"{backend_name}\", \
                 \"workers\": {workers}, \"reps\": {REPS}, \"wall_ns\": {best_ns}, \
                 \"speedup_vs_1_worker\": {speedup}, \"best_mu\": {mu:.6}, \
                 \"modeled_seconds\": {modeled:.3}}}",
                speedup = if speedup_vs_w1.is_nan() {
                    "null".to_string()
                } else {
                    format!("{speedup_vs_w1:.2}")
                },
                mu = outcome.best_cost.mu,
                modeled = outcome.modeled_seconds,
            ));
        }
    }

    format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR3\",\n\
         \x20 \"bench\": \"parallel_scaling\",\n\
         \x20 \"circuit\": \"s1196\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"iterations\": {iters},\n\
         \x20 \"host_parallelism\": {host_parallelism},\n\
         \x20 \"bitwise_identical_across_backends_and_workers\": {bitwise_ok},\n\
         \x20 \"type3_p5_speedup_4_workers_vs_1\": {speedup},\n\
         \x20 \"runs\": [\n{rows}\n  ]\n\
         }}\n",
        cells = netlist.num_cells(),
        speedup = if speedup_4v1.is_nan() {
            "null".to_string()
        } else {
            format!("{speedup_4v1:.2}")
        },
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_PR2.json".into());
    let out3_path = arg("--out3").unwrap_or_else(|| "BENCH_PR3.json".into());
    let iters: usize = arg("--iters").and_then(|v| v.parse().ok()).unwrap_or(10);
    let scaling_iters: usize = arg("--scaling-iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let only = arg("--only");
    let (run_pr2, run_pr3) = match only.as_deref() {
        None => (true, true),
        Some("pr2") => (true, false),
        Some("pr3") => (false, true),
        Some(other) => {
            eprintln!("unknown --only value '{other}' (expected 'pr2' or 'pr3')");
            std::process::exit(2);
        }
    };
    if !run_pr2 {
        // Backend-scaling snapshot only; skip the operator benchmarks.
        let json3 = parallel_scaling_report(scaling_iters);
        std::fs::write(&out3_path, &json3).expect("write parallel-scaling report");
        println!("wrote {out3_path}");
        print!("{json3}");
        return;
    }

    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iters);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);

    // -- Full engine run: per-phase wall times + deterministic work counts.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut placement = engine.initial_placement(&mut rng);
    let mut scratch = engine.new_scratch();
    let mut profile = ProfileReport::new();
    let run_ns = time_ns(1, || {
        for _ in 0..iters {
            black_box(engine.iterate(
                &mut placement,
                &mut scratch,
                &mut rng,
                &mut profile,
                &[],
                &[],
            ));
        }
    });

    // -- Naive-vs-kernel trial scoring head-to-head (48 slots, highest-degree
    //    cell), the kernel this PR introduced.
    let evaluator = engine.evaluator().clone();
    let cell = netlist
        .cell_ids()
        .max_by_key(|&c| netlist.nets_of_cell(c).len())
        .unwrap();
    let mut ripped = placement.clone();
    ripped.remove_cell(cell);
    let slots: Vec<Slot> = (0..48)
        .map(|i| {
            let row = i % circuit.num_rows();
            Slot {
                row,
                index: (i * 7) % (ripped.row(row).len() + 1),
            }
        })
        .collect();
    const REPS: usize = 200;
    let naive_trial_ns = time_ns(REPS, || {
        for &slot in &slots {
            let pos = ripped.trial_position(cell, slot);
            black_box(evaluator.cell_cost_at(&ripped, cell, pos));
        }
    });
    let mut scorer = TrialScorer::for_evaluator(&evaluator);
    let kernel_trial_ns = time_ns(REPS, || {
        scorer.prepare_cell(&evaluator, &ripped, cell);
        for &slot in &slots {
            let pos = ripped.trial_position(cell, slot);
            black_box(scorer.prepared_cost_at(pos));
        }
    });

    // -- Naive-vs-kernel full evaluation head-to-head (the kernel is forced
    //    onto the full-recompute path each rep), plus the steady-state cost
    //    of refreshing an unchanged placement (the cache-hit path the engine
    //    loop sees between iterations).
    let naive_eval_ns = time_ns(REPS, || {
        black_box(evaluator.net_lengths(&placement));
    });
    let mut cache = NetLengthCache::new();
    let kernel_eval_ns = time_ns(REPS, || {
        cache.invalidate();
        black_box(cache.refresh(&evaluator, &mut scorer, &placement).len());
    });
    cache.refresh(&evaluator, &mut scorer, &placement);
    let cached_eval_ns = time_ns(REPS, || {
        black_box(cache.refresh(&evaluator, &mut scorer, &placement).len());
    });

    // -- Assemble JSON (hand-rolled: the vendored serde is a no-op shim).
    let mut phases = String::new();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let ns = profile.time(*phase).as_nanos();
        let evals = profile.net_evals(*phase);
        if i > 0 {
            phases.push_str(",\n");
        }
        phases.push_str(&format!(
            "    {{\"phase\": \"{}\", \"total_ns\": {}, \"net_evals\": {}, \"net_evals_per_sec\": {:.0}}}",
            phase.label(),
            ns,
            evals,
            evals_per_sec(evals, ns)
        ));
    }
    let json = format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR2\",\n\
         \x20 \"circuit\": \"s1196\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"nets\": {nets},\n\
         \x20 \"iterations\": {iters},\n\
         \x20 \"total_run_ns\": {run_ns},\n\
         \x20 \"total_net_evals\": {total_evals},\n\
         \x20 \"net_evals_per_sec\": {total_rate:.0},\n\
         \x20 \"trial_positions\": {trials},\n\
         \x20 \"phases\": [\n{phases}\n  ],\n\
         \x20 \"head_to_head\": {{\n\
         \x20   \"trial_scoring_48slots\": {{\"reps\": {reps}, \"naive_ns\": {ntr}, \"kernel_ns\": {ktr}, \"speedup\": {str:.2}}},\n\
         \x20   \"full_net_lengths\": {{\"reps\": {reps}, \"naive_ns\": {nev}, \"kernel_ns\": {kev}, \"speedup\": {sev:.2}}},\n\
         \x20   \"refresh_unchanged\": {{\"reps\": {reps}, \"kernel_ns\": {cev}}}\n\
         \x20 }}\n\
         }}\n",
        cells = netlist.num_cells(),
        nets = netlist.num_nets(),
        iters = iters,
        run_ns = run_ns,
        total_evals = profile.total_net_evals(),
        total_rate = evals_per_sec(profile.total_net_evals(), run_ns),
        trials = profile.trial_positions,
        phases = phases,
        reps = REPS,
        ntr = naive_trial_ns,
        ktr = kernel_trial_ns,
        str = naive_trial_ns as f64 / kernel_trial_ns.max(1) as f64,
        nev = naive_eval_ns,
        kev = kernel_eval_ns,
        sev = naive_eval_ns as f64 / kernel_eval_ns.max(1) as f64,
        cev = cached_eval_ns,
    );

    std::fs::write(&out_path, &json).expect("write perf report");
    println!("wrote {out_path}");
    print!("{json}");

    if run_pr3 {
        // -- Execution-backend scaling snapshot (PR 3).
        let json3 = parallel_scaling_report(scaling_iters);
        std::fs::write(&out3_path, &json3).expect("write parallel-scaling report");
        println!("wrote {out3_path}");
        print!("{json3}");
    }
}
