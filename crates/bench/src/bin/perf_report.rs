//! `perf_report` — machine-readable performance snapshots of the SimE hot
//! paths, written as JSON so CI can archive the perf trajectory PR over PR.
//!
//! Three reports per invocation:
//!
//! * `BENCH_PR2.json` — the operator snapshot: a handful of full SimE
//!   iterations on the paper's `s1196` circuit plus naive-vs-kernel
//!   head-to-heads (trial scoring, full evaluation, the per-cell goodness
//!   pass), with per-phase wall-clock nanoseconds, deterministic work counts
//!   and derived net-evaluations/second rates. The machine-relative ratios
//!   in `head_to_head` are what the CI perf-guardrail job compares against
//!   the checked-in `BENCH_BASELINE.json` (see the `perf_guard` binary).
//! * `BENCH_PR3.json` — the execution-backend scaling snapshot: the
//!   `parallel_scaling` matrix (Type III at p = 5, Type II random at p = 4)
//!   on the `Modeled` backend and the `Threaded` backend at 1, 2 and 4 OS
//!   workers, with measured wall-clock per run, the speedup of 4 workers
//!   over 1, the host's available parallelism (the speedup ceiling — on a
//!   single-core host the honest number is ~1×), and a cross-check that
//!   every backend/worker-count produced bitwise-identical results.
//! * `BENCH_PR5.json` — the intra-rank scaling snapshot: one full SimE
//!   iteration on the extended-tier `s15850` circuit (10.3k cells) with the
//!   `EvalParallelism` knob at 1/2/4 chunks on a shared worker pool, with
//!   per-chunk-count iteration and Evaluation-phase wall-clock, the speedup
//!   over the serial path, and a bitwise cross-check. As with PR3, the
//!   checked-in file from a single-core container honestly records ≈ 1×;
//!   CI's perf-guardrail job regenerates it on multi-core runners.
//! * `BENCH_PR6.json` — the persistent-epoch snapshot: one full fused SimE
//!   iteration on `s15850`, serial versus a persistent 4-worker pool at 2
//!   and 4 chunks, for both the windowed default allocation (wave-prepared
//!   on the pool since PR 6) and the exhaustive stress shape. The headline
//!   `windowed_speedup_threaded4_vs_serial` is what `perf_guard --pr6`
//!   gates at ≥ 2× on multi-core CI runners.
//! * `BENCH_PR7.json` — the bound-pruned allocation snapshot: the serial
//!   windowed iteration on `s15850`, PR 7's default engine (bound-pruned
//!   trial scoring + incremental goodness cache) versus the legacy
//!   exhaustive configuration, A/B'd in the same process from identical
//!   seeded starts. Both arms are serial, so the headline
//!   `windowed_serial_speedup_vs_legacy` is machine-relative and
//!   `perf_guard --pr7` gates it at ≥ 1.3× on **every** runner,
//!   single-core included. The report also carries per-phase wall shares
//!   (Evaluation / Selection / Allocation / cost refresh) for both arms;
//!   `--phases` additionally prints them as a table.
//!
//! Usage:
//! `perf_report [--only pr2|pr3|pr5|pr6|pr7] [--out PATH] [--out3 PATH]
//! [--out5 PATH] [--out6 PATH] [--out7 PATH] [--iters N] [--scaling-iters N]
//! [--phases]`
//! (defaults: all five reports, `BENCH_PR2.json`, `BENCH_PR3.json`,
//! `BENCH_PR5.json`, `BENCH_PR6.json`, `BENCH_PR7.json`, 10 and 8
//! iterations; `--only` lets a CI job generate just the part it archives).

use bench::json::Json;
use cluster_sim::comm::WorkerPool;
use cluster_sim::timeline::ClusterConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_core::parallel::EvalContext;
use sime_core::profile::{Phase, ProfileReport};
use sime_parallel::exec::{ExecBackend, Modeled, Threaded};
use sime_parallel::type2::{run_type2_on, RowPattern, Type2Config};
use sime_parallel::type3::{run_type3_on, Type3Config};
use sime_parallel::StrategyOutcome;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use vlsi_netlist::bench_suite::{paper_circuit, ExtendedCircuit, PaperCircuit, SuiteCircuit};
use vlsi_place::cost::Objectives;
use vlsi_place::kernel::{NetLengthCache, TrialScorer};
use vlsi_place::layout::Slot;

/// Times `f` over `reps` repetitions and returns total nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos()
}

/// A boxed strategy launcher, parameterised over the execution backend (used
/// by the parallel-scaling matrix).
type StrategyRunner<'a> = Box<dyn Fn(&dyn ExecBackend) -> StrategyOutcome + 'a>;

fn evals_per_sec(net_evals: u64, total_ns: u128) -> f64 {
    if total_ns == 0 {
        0.0
    } else {
        net_evals as f64 / (total_ns as f64 / 1e9)
    }
}

/// Runs the parallel-scaling matrix and assembles the `BENCH_PR3` JSON:
/// wall-clock per (strategy, backend, workers) cell — best of `reps`
/// repetitions — plus speedups and the bitwise cross-backend check.
fn parallel_scaling_report(iters: usize) -> String {
    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iters);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    const REPS: usize = 3;

    let backends: Vec<(String, u64, Box<dyn ExecBackend>)> = vec![
        ("modeled".into(), 0, Box::new(Modeled)),
        ("threaded".into(), 1, Box::new(Threaded::new(1))),
        ("threaded".into(), 2, Box::new(Threaded::new(2))),
        ("threaded".into(), 4, Box::new(Threaded::new(4))),
    ];
    let strategies: Vec<(&str, StrategyRunner<'_>)> = vec![
        (
            "type3_p5",
            Box::new(|backend: &dyn ExecBackend| {
                run_type3_on(
                    &engine,
                    ClusterConfig::paper_cluster(5),
                    Type3Config {
                        ranks: 5,
                        iterations: iters,
                        retry_threshold: 5,
                    },
                    backend,
                )
            }),
        ),
        (
            "type2_random_p4",
            Box::new(|backend: &dyn ExecBackend| {
                run_type2_on(
                    &engine,
                    ClusterConfig::paper_cluster(4),
                    Type2Config {
                        ranks: 4,
                        iterations: iters,
                        pattern: RowPattern::Random,
                    },
                    backend,
                )
            }),
        ),
    ];

    let mut rows = String::new();
    let mut bitwise_ok = true;
    let mut speedup_4v1 = f64::NAN;
    for (si, (name, run)) in strategies.iter().enumerate() {
        let mut reference: Option<StrategyOutcome> = None;
        let mut wall_w1 = 0u128;
        for (bi, (backend_name, workers, backend)) in backends.iter().enumerate() {
            let mut best_ns = u128::MAX;
            let mut outcome = None;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let o = run(backend.as_ref());
                best_ns = best_ns.min(t0.elapsed().as_nanos());
                outcome = Some(o);
            }
            let outcome = outcome.expect("at least one rep ran");
            match &reference {
                None => reference = Some(outcome.clone()),
                Some(r) => {
                    bitwise_ok &= r.best_cost.mu.to_bits() == outcome.best_cost.mu.to_bits()
                        && r.modeled_seconds.to_bits() == outcome.modeled_seconds.to_bits()
                        && r.mu_history.len() == outcome.mu_history.len()
                        && r.mu_history
                            .iter()
                            .zip(&outcome.mu_history)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                }
            }
            if *workers == 1 {
                wall_w1 = best_ns;
            }
            let speedup_vs_w1 = if *workers >= 1 && wall_w1 > 0 {
                wall_w1 as f64 / best_ns as f64
            } else {
                f64::NAN
            };
            if si == 0 && *workers == 4 && wall_w1 > 0 {
                speedup_4v1 = wall_w1 as f64 / best_ns as f64;
            }
            if si > 0 || bi > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"strategy\": \"{name}\", \"backend\": \"{backend_name}\", \
                 \"workers\": {workers}, \"reps\": {REPS}, \"wall_ns\": {best_ns}, \
                 \"speedup_vs_1_worker\": {speedup}, \"best_mu\": {mu:.6}, \
                 \"modeled_seconds\": {modeled:.3}}}",
                speedup = if speedup_vs_w1.is_nan() {
                    "null".to_string()
                } else {
                    format!("{speedup_vs_w1:.2}")
                },
                mu = outcome.best_cost.mu,
                modeled = outcome.modeled_seconds,
            ));
        }
    }

    format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR3\",\n\
         \x20 \"bench\": \"parallel_scaling\",\n\
         \x20 \"circuit\": \"s1196\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"iterations\": {iters},\n\
         \x20 \"host_parallelism\": {host_parallelism},\n\
         \x20 \"bitwise_identical_across_backends_and_workers\": {bitwise_ok},\n\
         \x20 \"type3_p5_speedup_4_workers_vs_1\": {speedup},\n\
         \x20 \"runs\": [\n{rows}\n  ]\n\
         }}\n",
        cells = netlist.num_cells(),
        speedup = if speedup_4v1.is_nan() {
            "null".to_string()
        } else {
            format!("{speedup_4v1:.2}")
        },
    )
}

/// Runs the intra-rank scaling matrix and assembles the `BENCH_PR5` JSON:
/// one full SimE iteration on `s15850` at 1/2/4 evaluation chunks — the
/// serial path inline, the chunked paths on a 4-worker pool — with
/// per-chunk-count wall-clock (best of `REPS` from identical seeded starts),
/// the Evaluation-phase share, and a bitwise cross-check of the resulting
/// cost and trajectory.
///
/// Two allocation configurations span the knob's envelope:
///
/// * `windowed` — the paper's default windowed best fit (48 candidate slots
///   per cell). Trial scoring stays below the fan-out threshold, so only the
///   per-cell goodness pass chunks; the iteration-level gain is bounded by
///   the Evaluation phase's share.
/// * `exhaustive_s8` — exhaustive best fit at trial stride 8 (~1.3k
///   candidates per cell on s15850's ≈ 166-slot rows), the extended-tier
///   stress shape where the chunked trial-scoring loop carries most of the
///   iteration and the speedup approaches the pool's parallelism on a
///   multi-core host.
fn intra_rank_report() -> String {
    let circuit = SuiteCircuit::Extended(ExtendedCircuit::S15850);
    let netlist = Arc::new(circuit.generate());
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    const POOL_WORKERS: usize = 4;
    const REPS: usize = 2;
    let pool = WorkerPool::new(POOL_WORKERS);

    let configs: Vec<(&str, SimEConfig)> = vec![
        (
            "windowed",
            SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1),
        ),
        ("exhaustive_s8", {
            let mut config =
                SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1);
            config.allocation = sime_core::allocation::AllocationConfig {
                strategy: sime_core::allocation::AllocationStrategy::SortedBestFit,
                trial_stride: 8,
                ..Default::default()
            };
            config
        }),
    ];

    let mut rows = String::new();
    let mut bitwise_ok = true;
    let mut headline_speedup = f64::NAN;
    let mut first_row = true;
    for (alloc_label, config) in configs {
        let engine = SimEEngine::new(Arc::clone(&netlist), config);
        // One seeded iteration from a fixed initial placement per run; every
        // chunk count replays the identical start so wall-clock is the only
        // degree of freedom and the end states compare bit for bit.
        let mut seed_rng = ChaCha8Rng::seed_from_u64(1);
        let initial = engine.initial_placement(&mut seed_rng);

        let mut reference_bits: Option<(u64, u64, u64)> = None;
        let mut serial_ns = 0u128;
        for &chunks in &[1usize, 2, 4] {
            let mut best_iter_ns = u128::MAX;
            let mut best_eval_ns = u128::MAX;
            let mut end_bits = (0u64, 0u64, 0u64);
            for _ in 0..REPS {
                let ctx = if chunks > 1 {
                    EvalContext::chunked(&pool, chunks)
                } else {
                    EvalContext::serial()
                };
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                let mut placement = initial.clone();
                let mut scratch = engine.new_scratch();
                let mut profile = ProfileReport::new();
                let t0 = Instant::now();
                let (avg, _selected, _stats) = black_box(engine.iterate_on(
                    &mut placement,
                    &mut scratch,
                    &mut rng,
                    &mut profile,
                    &[],
                    &[],
                    &ctx,
                ));
                best_iter_ns = best_iter_ns.min(t0.elapsed().as_nanos());
                best_eval_ns = best_eval_ns.min(
                    profile.time(Phase::CostCalculation).as_nanos()
                        + profile.time(Phase::GoodnessEvaluation).as_nanos(),
                );
                let cost = engine.cost_with(&placement, &mut scratch);
                end_bits = (cost.mu.to_bits(), cost.wirelength.to_bits(), avg.to_bits());
            }
            match reference_bits {
                None => reference_bits = Some(end_bits),
                Some(reference) => bitwise_ok &= reference == end_bits,
            }
            if chunks == 1 {
                serial_ns = best_iter_ns;
            }
            let speedup = if serial_ns > 0 {
                serial_ns as f64 / best_iter_ns as f64
            } else {
                f64::NAN
            };
            if alloc_label == "exhaustive_s8" && chunks == 4 {
                headline_speedup = speedup;
            }
            if !first_row {
                rows.push_str(",\n");
            }
            first_row = false;
            rows.push_str(&format!(
                "    {{\"allocation\": \"{alloc_label}\", \"eval_chunks\": {chunks}, \
                 \"reps\": {REPS}, \"iteration_wall_ns\": {best_iter_ns}, \
                 \"evaluation_wall_ns\": {best_eval_ns}, \"speedup_vs_serial\": {speedup:.2}}}",
            ));
        }
    }

    format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR5\",\n\
         \x20 \"bench\": \"intra_rank_scaling\",\n\
         \x20 \"circuit\": \"s15850\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"nets\": {nets},\n\
         \x20 \"iterations_per_run\": 1,\n\
         \x20 \"pool_workers\": {POOL_WORKERS},\n\
         \x20 \"host_parallelism\": {host_parallelism},\n\
         \x20 \"bitwise_identical_across_chunk_counts\": {bitwise_ok},\n\
         \x20 \"exhaustive_speedup_4_chunks_vs_serial\": {speedup},\n\
         \x20 \"runs\": [\n{rows}\n  ]\n\
         }}\n",
        cells = netlist.num_cells(),
        nets = netlist.num_nets(),
        speedup = if headline_speedup.is_nan() {
            "null".to_string()
        } else {
            format!("{headline_speedup:.2}")
        },
    )
}

/// Runs the persistent-epoch matrix and assembles the `BENCH_PR6` JSON: one
/// full SimE iteration on `s15850`, serial versus a 4-worker persistent pool
/// at 2 and 4 evaluation chunks, for both allocation envelopes. Unlike the
/// PR 5 snapshot this measures the *fused* per-iteration epoch path: the
/// wave-prepared windowed allocation, the fanned net-length refresh and the
/// chunked goodness pass all ride the same long-lived worker lanes, so the
/// `windowed` shape — ~98 % of serial runtime in allocation, previously
/// pinned to one core — now scales too and carries the headline
/// `windowed_speedup_threaded4_vs_serial`. The checked-in file from a
/// single-core container honestly records ≈ 1×; the CI perf-guardrail job
/// regenerates it on a multi-core runner and `perf_guard --pr6` gates it.
fn persistent_epoch_report() -> String {
    let circuit = SuiteCircuit::Extended(ExtendedCircuit::S15850);
    let netlist = Arc::new(circuit.generate());
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    const POOL_WORKERS: usize = 4;
    const REPS: usize = 2;
    let pool = WorkerPool::new(POOL_WORKERS);

    let configs: Vec<(&str, SimEConfig)> = vec![
        (
            "windowed",
            SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1),
        ),
        ("exhaustive_s8", {
            let mut config =
                SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1);
            config.allocation = sime_core::allocation::AllocationConfig {
                strategy: sime_core::allocation::AllocationStrategy::SortedBestFit,
                trial_stride: 8,
                ..Default::default()
            };
            config
        }),
    ];

    let mut rows = String::new();
    let mut bitwise_ok = true;
    let mut windowed_headline = f64::NAN;
    let mut exhaustive_ev2 = f64::NAN;
    let mut exhaustive_ev4 = f64::NAN;
    let mut first_row = true;
    for (alloc_label, config) in configs {
        let engine = SimEEngine::new(Arc::clone(&netlist), config);
        let mut seed_rng = ChaCha8Rng::seed_from_u64(1);
        let initial = engine.initial_placement(&mut seed_rng);

        let mut reference_bits: Option<(u64, u64, u64)> = None;
        let mut serial_ns = 0u128;
        for &chunks in &[1usize, 2, 4] {
            let mut best_iter_ns = u128::MAX;
            let mut best_alloc_ns = u128::MAX;
            let mut end_bits = (0u64, 0u64, 0u64);
            for _ in 0..REPS {
                let ctx = if chunks > 1 {
                    EvalContext::chunked(&pool, chunks)
                } else {
                    EvalContext::serial()
                };
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                let mut placement = initial.clone();
                let mut scratch = engine.new_scratch();
                let mut profile = ProfileReport::new();
                let t0 = Instant::now();
                let (avg, _selected, _stats) = black_box(engine.iterate_on(
                    &mut placement,
                    &mut scratch,
                    &mut rng,
                    &mut profile,
                    &[],
                    &[],
                    &ctx,
                ));
                best_iter_ns = best_iter_ns.min(t0.elapsed().as_nanos());
                best_alloc_ns = best_alloc_ns.min(profile.time(Phase::Allocation).as_nanos());
                let cost = engine.cost_with(&placement, &mut scratch);
                end_bits = (cost.mu.to_bits(), cost.wirelength.to_bits(), avg.to_bits());
            }
            match reference_bits {
                None => reference_bits = Some(end_bits),
                Some(reference) => bitwise_ok &= reference == end_bits,
            }
            if chunks == 1 {
                serial_ns = best_iter_ns;
            }
            let speedup = if serial_ns > 0 {
                serial_ns as f64 / best_iter_ns as f64
            } else {
                f64::NAN
            };
            match (alloc_label, chunks) {
                ("windowed", 4) => windowed_headline = speedup,
                ("exhaustive_s8", 2) => exhaustive_ev2 = speedup,
                ("exhaustive_s8", 4) => exhaustive_ev4 = speedup,
                _ => {}
            }
            if !first_row {
                rows.push_str(",\n");
            }
            first_row = false;
            rows.push_str(&format!(
                "    {{\"allocation\": \"{alloc_label}\", \"mode\": \"{mode}\", \
                 \"eval_chunks\": {chunks}, \"reps\": {REPS}, \
                 \"iteration_wall_ns\": {best_iter_ns}, \
                 \"allocation_wall_ns\": {best_alloc_ns}, \
                 \"speedup_vs_serial\": {speedup:.2}}}",
                mode = if chunks > 1 { "threaded" } else { "serial" },
            ));
        }
    }

    let fmt_speedup = |s: f64| {
        if s.is_nan() {
            "null".to_string()
        } else {
            format!("{s:.2}")
        }
    };
    format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR6\",\n\
         \x20 \"bench\": \"persistent_epoch\",\n\
         \x20 \"circuit\": \"s15850\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"nets\": {nets},\n\
         \x20 \"iterations_per_run\": 1,\n\
         \x20 \"pool_workers\": {POOL_WORKERS},\n\
         \x20 \"host_parallelism\": {host_parallelism},\n\
         \x20 \"bitwise_identical_across_configs\": {bitwise_ok},\n\
         \x20 \"windowed_speedup_threaded4_vs_serial\": {headline},\n\
         \x20 \"exhaustive_speedup_2_chunks_vs_serial\": {ev2},\n\
         \x20 \"exhaustive_speedup_4_chunks_vs_serial\": {ev4},\n\
         \x20 \"runs\": [\n{rows}\n  ]\n\
         }}\n",
        cells = netlist.num_cells(),
        nets = netlist.num_nets(),
        headline = fmt_speedup(windowed_headline),
        ev2 = fmt_speedup(exhaustive_ev2),
        ev4 = fmt_speedup(exhaustive_ev4),
    )
}

/// Runs the bound-pruned allocation A/B and assembles the `BENCH_PR7` JSON.
///
/// Two serial arms from identical seeded starts on the extended-tier
/// `s15850` circuit, windowed allocation:
///
/// * `pruned_incremental` — PR 7's defaults: bound-pruned trial scoring
///   with row-hoisted exact rescoring plus the incremental per-cell
///   goodness cache;
/// * `legacy_exhaustive` — the pre-PR 7 engine (`bound_pruning` off,
///   `incremental_goodness` off), every candidate scored in full and the
///   goodness vector rebuilt from scratch each refresh.
///
/// Both arms run in the same process on the same host, so the headline
/// `windowed_serial_speedup_vs_legacy` is machine-relative — a single-core
/// container measures it as honestly as a 32-core runner, which is why
/// `perf_guard --pr7` gates it without a low-core skip. Wall-clock is the
/// best of `REPS` repetitions of an `ITERS`-iteration run (the second
/// iteration exercises the carried goodness cache), reported per iteration.
/// Per-arm phase wall shares (cost refresh / goodness / selection /
/// allocation / delay) come from the fastest repetition; `print_phases`
/// additionally prints them as a table. The cross-PR
/// `windowed_serial_speedup_vs_pr6_baseline` reads the *checked-in*
/// `BENCH_PR6.json` windowed-serial wall when present (null otherwise) —
/// meaningful on the host that pinned that snapshot, indicative elsewhere.
fn bound_pruned_report(print_phases: bool) -> String {
    let circuit = SuiteCircuit::Extended(ExtendedCircuit::S15850);
    let netlist = Arc::new(circuit.generate());
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    const REPS: usize = 3;
    const ITERS: usize = 2;

    let optimized = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 1);
    assert!(
        optimized.allocation.bound_pruning && optimized.incremental_goodness,
        "PR 7 fast paths must be the default"
    );
    let legacy = {
        let mut config = optimized;
        config.allocation.bound_pruning = false;
        config.incremental_goodness = false;
        config
    };
    let arms: [(&str, SimEConfig); 2] = [
        ("pruned_incremental", optimized),
        ("legacy_exhaustive", legacy),
    ];

    // The checked-in PR 6 snapshot's windowed serial wall, for the cross-PR
    // headline. Validated against the run's labels so a reshuffled report
    // cannot silently feed the wrong cell.
    let pr6_baseline_ns: Option<f64> = std::fs::read("BENCH_PR6.json")
        .ok()
        .and_then(|bytes| Json::parse_bytes(&bytes).ok())
        .filter(|report| {
            report.string("runs.0.allocation") == Some("windowed")
                && report.string("runs.0.mode") == Some("serial")
        })
        .and_then(|report| report.number("runs.0.iteration_wall_ns"));

    struct Arm {
        label: &'static str,
        per_iter_ns: u128,
        phase_ns: Vec<(&'static str, u128)>,
        end_bits: Vec<u64>,
    }
    let mut measured: Vec<Arm> = Vec::new();
    for (label, config) in arms {
        let engine = SimEEngine::new(Arc::clone(&netlist), config);
        let mut seed_rng = ChaCha8Rng::seed_from_u64(1);
        let initial = engine.initial_placement(&mut seed_rng);
        let mut best_total_ns = u128::MAX;
        let mut best_profile = ProfileReport::new();
        let mut end_bits: Vec<u64> = Vec::new();
        for _ in 0..REPS {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut placement = initial.clone();
            let mut scratch = engine.new_scratch();
            let mut profile = ProfileReport::new();
            let mut bits: Vec<u64> = Vec::new();
            let t0 = Instant::now();
            for _ in 0..ITERS {
                let (avg, selected, _stats) = black_box(engine.iterate(
                    &mut placement,
                    &mut scratch,
                    &mut rng,
                    &mut profile,
                    &[],
                    &[],
                ));
                bits.push(avg.to_bits());
                bits.push(selected as u64);
            }
            let total_ns = t0.elapsed().as_nanos();
            let cost = engine.cost_with(&placement, &mut scratch);
            bits.push(cost.mu.to_bits());
            bits.push(cost.wirelength.to_bits());
            bits.push(cost.power.to_bits());
            if total_ns < best_total_ns {
                best_total_ns = total_ns;
                best_profile = profile;
            }
            end_bits = bits;
        }
        measured.push(Arm {
            label,
            per_iter_ns: best_total_ns / ITERS as u128,
            phase_ns: Phase::ALL
                .iter()
                .map(|&p| (p.label(), best_profile.time(p).as_nanos()))
                .collect(),
            end_bits,
        });
    }

    let bitwise_ok = measured[0].end_bits == measured[1].end_bits;
    let optimized_ns = measured[0].per_iter_ns;
    let legacy_ns = measured[1].per_iter_ns;
    let speedup_vs_legacy = legacy_ns as f64 / optimized_ns.max(1) as f64;
    let speedup_vs_pr6 = pr6_baseline_ns.map(|base| base / optimized_ns.max(1) as f64);

    if print_phases {
        println!("per-phase wall shares (windowed serial, s15850, best of {REPS} reps):");
        for arm in &measured {
            let total: u128 = arm.phase_ns.iter().map(|(_, ns)| ns).sum();
            print!("  {:<20}", arm.label);
            for &(label, ns) in &arm.phase_ns {
                print!(" {label} {:.1} %", ns as f64 / total.max(1) as f64 * 100.0);
            }
            println!();
        }
    }

    let mut rows = String::new();
    for (i, arm) in measured.iter().enumerate() {
        let total: u128 = arm.phase_ns.iter().map(|(_, ns)| ns).sum();
        let mut phases = String::new();
        for (j, &(label, ns)) in arm.phase_ns.iter().enumerate() {
            if j > 0 {
                phases.push_str(", ");
            }
            phases.push_str(&format!(
                "{{\"phase\": \"{label}\", \"wall_ns\": {ns}, \"share\": {share:.4}}}",
                share = ns as f64 / total.max(1) as f64,
            ));
        }
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"config\": \"{label}\", \"mode\": \"serial\", \"reps\": {REPS}, \
             \"iterations_per_rep\": {ITERS}, \"iteration_wall_ns\": {ns}, \
             \"phases\": [{phases}]}}",
            label = arm.label,
            ns = arm.per_iter_ns,
        ));
    }

    format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR7\",\n\
         \x20 \"bench\": \"bound_pruned_allocation\",\n\
         \x20 \"circuit\": \"s15850\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"nets\": {nets},\n\
         \x20 \"host_parallelism\": {host_parallelism},\n\
         \x20 \"bitwise_identical_across_configs\": {bitwise_ok},\n\
         \x20 \"windowed_serial_iteration_ns\": {optimized_ns},\n\
         \x20 \"legacy_serial_iteration_ns\": {legacy_ns},\n\
         \x20 \"windowed_serial_speedup_vs_legacy\": {vs_legacy:.2},\n\
         \x20 \"windowed_serial_speedup_vs_pr6_baseline\": {vs_pr6},\n\
         \x20 \"runs\": [\n{rows}\n  ]\n\
         }}\n",
        cells = netlist.num_cells(),
        nets = netlist.num_nets(),
        vs_legacy = speedup_vs_legacy,
        vs_pr6 = speedup_vs_pr6.map_or("null".to_string(), |s| format!("{s:.2}")),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_PR2.json".into());
    let out3_path = arg("--out3").unwrap_or_else(|| "BENCH_PR3.json".into());
    let out5_path = arg("--out5").unwrap_or_else(|| "BENCH_PR5.json".into());
    let out6_path = arg("--out6").unwrap_or_else(|| "BENCH_PR6.json".into());
    let out7_path = arg("--out7").unwrap_or_else(|| "BENCH_PR7.json".into());
    let iters: usize = arg("--iters").and_then(|v| v.parse().ok()).unwrap_or(10);
    let scaling_iters: usize = arg("--scaling-iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let print_phases = args.iter().any(|a| a == "--phases");
    let only = arg("--only");
    let (run_pr2, run_pr3, run_pr5, run_pr6, run_pr7) = match only.as_deref() {
        None => (true, true, true, true, true),
        Some("pr2") => (true, false, false, false, false),
        Some("pr3") => (false, true, false, false, false),
        Some("pr5") => (false, false, true, false, false),
        Some("pr6") => (false, false, false, true, false),
        Some("pr7") => (false, false, false, false, true),
        Some(other) => {
            eprintln!(
                "unknown --only value '{other}' (expected 'pr2', 'pr3', 'pr5', 'pr6' or 'pr7')"
            );
            std::process::exit(2);
        }
    };
    if !run_pr2 {
        // Scaling snapshots only; skip the operator benchmarks.
        if run_pr3 {
            let json3 = parallel_scaling_report(scaling_iters);
            std::fs::write(&out3_path, &json3).expect("write parallel-scaling report");
            println!("wrote {out3_path}");
            print!("{json3}");
        }
        if run_pr5 {
            let json5 = intra_rank_report();
            std::fs::write(&out5_path, &json5).expect("write intra-rank scaling report");
            println!("wrote {out5_path}");
            print!("{json5}");
        }
        if run_pr6 {
            let json6 = persistent_epoch_report();
            std::fs::write(&out6_path, &json6).expect("write persistent-epoch report");
            println!("wrote {out6_path}");
            print!("{json6}");
        }
        if run_pr7 {
            let json7 = bound_pruned_report(print_phases);
            std::fs::write(&out7_path, &json7).expect("write bound-pruned allocation report");
            println!("wrote {out7_path}");
            print!("{json7}");
        }
        return;
    }

    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iters);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);

    // -- Full engine run: per-phase wall times + deterministic work counts.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut placement = engine.initial_placement(&mut rng);
    let mut scratch = engine.new_scratch();
    let mut profile = ProfileReport::new();
    let run_ns = time_ns(1, || {
        for _ in 0..iters {
            black_box(engine.iterate(
                &mut placement,
                &mut scratch,
                &mut rng,
                &mut profile,
                &[],
                &[],
            ));
        }
    });

    // -- Naive-vs-kernel trial scoring head-to-head (48 slots, highest-degree
    //    cell), the kernel this PR introduced.
    let evaluator = engine.evaluator().clone();
    let cell = netlist
        .cell_ids()
        .max_by_key(|&c| netlist.nets_of_cell(c).len())
        .unwrap();
    let mut ripped = placement.clone();
    ripped.remove_cell(cell);
    let slots: Vec<Slot> = (0..48)
        .map(|i| {
            let row = i % circuit.num_rows();
            Slot {
                row,
                index: (i * 7) % (ripped.row(row).len() + 1),
            }
        })
        .collect();
    const REPS: usize = 200;
    let naive_trial_ns = time_ns(REPS, || {
        for &slot in &slots {
            let pos = ripped.trial_position(cell, slot);
            black_box(evaluator.cell_cost_at(&ripped, cell, pos));
        }
    });
    let mut scorer = TrialScorer::for_evaluator(&evaluator);
    let kernel_trial_ns = time_ns(REPS, || {
        scorer.prepare_cell(&evaluator, &ripped, cell);
        for &slot in &slots {
            let pos = ripped.trial_position(cell, slot);
            black_box(scorer.prepared_cost_at(pos));
        }
    });

    // -- Naive-vs-kernel full evaluation head-to-head (the kernel is forced
    //    onto the full-recompute path each rep), plus the steady-state cost
    //    of refreshing an unchanged placement (the cache-hit path the engine
    //    loop sees between iterations).
    let naive_eval_ns = time_ns(REPS, || {
        black_box(evaluator.net_lengths(&placement));
    });
    let mut cache = NetLengthCache::new();
    let kernel_eval_ns = time_ns(REPS, || {
        cache.invalidate();
        black_box(cache.refresh(&evaluator, &mut scorer, &placement).len());
    });
    cache.refresh(&evaluator, &mut scorer, &placement);
    let cached_eval_ns = time_ns(REPS, || {
        black_box(cache.refresh(&evaluator, &mut scorer, &placement).len());
    });

    // -- The per-cell goodness pass (the Evaluation-phase cost the intra-rank
    //    fan-out targets), measured serially against the naive full
    //    evaluation so the guardrail ratio is machine-relative.
    let goodness_lengths = evaluator.net_lengths(&placement);
    let mut goodness_buf = Vec::new();
    let goodness_ns = time_ns(REPS, || {
        engine
            .goodness()
            .all_goodness_into(&goodness_lengths, &mut goodness_buf);
        black_box(goodness_buf.len());
    });

    // -- Assemble JSON (hand-rolled: the vendored serde is a no-op shim).
    let mut phases = String::new();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let ns = profile.time(*phase).as_nanos();
        let evals = profile.net_evals(*phase);
        if i > 0 {
            phases.push_str(",\n");
        }
        phases.push_str(&format!(
            "    {{\"phase\": \"{}\", \"total_ns\": {}, \"net_evals\": {}, \"net_evals_per_sec\": {:.0}}}",
            phase.label(),
            ns,
            evals,
            evals_per_sec(evals, ns)
        ));
    }
    let json = format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR2\",\n\
         \x20 \"circuit\": \"s1196\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"nets\": {nets},\n\
         \x20 \"iterations\": {iters},\n\
         \x20 \"total_run_ns\": {run_ns},\n\
         \x20 \"total_net_evals\": {total_evals},\n\
         \x20 \"net_evals_per_sec\": {total_rate:.0},\n\
         \x20 \"trial_positions\": {trials},\n\
         \x20 \"phases\": [\n{phases}\n  ],\n\
         \x20 \"head_to_head\": {{\n\
         \x20   \"trial_scoring_48slots\": {{\"reps\": {reps}, \"naive_ns\": {ntr}, \"kernel_ns\": {ktr}, \"speedup\": {str:.2}}},\n\
         \x20   \"full_net_lengths\": {{\"reps\": {reps}, \"naive_ns\": {nev}, \"kernel_ns\": {kev}, \"speedup\": {sev:.2}}},\n\
         \x20   \"refresh_unchanged\": {{\"reps\": {reps}, \"kernel_ns\": {cev}}},\n\
         \x20   \"goodness_pass\": {{\"reps\": {reps}, \"ns\": {gns}, \"ratio_vs_naive_eval\": {grat:.3}}}\n\
         \x20 }}\n\
         }}\n",
        cells = netlist.num_cells(),
        nets = netlist.num_nets(),
        iters = iters,
        run_ns = run_ns,
        total_evals = profile.total_net_evals(),
        total_rate = evals_per_sec(profile.total_net_evals(), run_ns),
        trials = profile.trial_positions,
        phases = phases,
        reps = REPS,
        ntr = naive_trial_ns,
        ktr = kernel_trial_ns,
        str = naive_trial_ns as f64 / kernel_trial_ns.max(1) as f64,
        nev = naive_eval_ns,
        kev = kernel_eval_ns,
        sev = naive_eval_ns as f64 / kernel_eval_ns.max(1) as f64,
        cev = cached_eval_ns,
        gns = goodness_ns,
        grat = goodness_ns as f64 / naive_eval_ns.max(1) as f64,
    );

    std::fs::write(&out_path, &json).expect("write perf report");
    println!("wrote {out_path}");
    print!("{json}");

    if run_pr3 {
        // -- Execution-backend scaling snapshot (PR 3).
        let json3 = parallel_scaling_report(scaling_iters);
        std::fs::write(&out3_path, &json3).expect("write parallel-scaling report");
        println!("wrote {out3_path}");
        print!("{json3}");
    }
    if run_pr5 {
        // -- Intra-rank scaling snapshot (PR 5).
        let json5 = intra_rank_report();
        std::fs::write(&out5_path, &json5).expect("write intra-rank scaling report");
        println!("wrote {out5_path}");
        print!("{json5}");
    }
    if run_pr6 {
        // -- Persistent-epoch snapshot (PR 6).
        let json6 = persistent_epoch_report();
        std::fs::write(&out6_path, &json6).expect("write persistent-epoch report");
        println!("wrote {out6_path}");
        print!("{json6}");
    }
    if run_pr7 {
        // -- Bound-pruned allocation snapshot (PR 7).
        let json7 = bound_pruned_report(print_phases);
        std::fs::write(&out7_path, &json7).expect("write bound-pruned allocation report");
        println!("wrote {out7_path}");
        print!("{json7}");
    }
}
