//! `perf_report` — machine-readable performance snapshot of the SimE
//! operator hot paths, written as JSON so CI can archive the perf trajectory
//! PR over PR.
//!
//! Runs the operator benches at reduced scale (a handful of full SimE
//! iterations on the paper's `s1196` circuit plus naive-vs-kernel
//! head-to-heads) and writes `BENCH_PR2.json` with per-phase wall-clock
//! nanoseconds, deterministic work counts and derived net-evaluations/second
//! rates.
//!
//! Usage: `perf_report [--out PATH] [--iters N]`
//! (defaults: `BENCH_PR2.json`, 10 iterations).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sime_core::engine::{SimEConfig, SimEEngine};
use sime_core::profile::{Phase, ProfileReport};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_place::cost::Objectives;
use vlsi_place::kernel::{NetLengthCache, TrialScorer};
use vlsi_place::layout::Slot;

/// Times `f` over `reps` repetitions and returns total nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos()
}

fn evals_per_sec(net_evals: u64, total_ns: u128) -> f64 {
    if total_ns == 0 {
        0.0
    } else {
        net_evals as f64 / (total_ns as f64 / 1e9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_PR2.json".into());
    let iters: usize = arg("--iters").and_then(|v| v.parse().ok()).unwrap_or(10);

    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iters);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);

    // -- Full engine run: per-phase wall times + deterministic work counts.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut placement = engine.initial_placement(&mut rng);
    let mut scratch = engine.new_scratch();
    let mut profile = ProfileReport::new();
    let run_ns = time_ns(1, || {
        for _ in 0..iters {
            black_box(engine.iterate(
                &mut placement,
                &mut scratch,
                &mut rng,
                &mut profile,
                &[],
                &[],
            ));
        }
    });

    // -- Naive-vs-kernel trial scoring head-to-head (48 slots, highest-degree
    //    cell), the kernel this PR introduced.
    let evaluator = engine.evaluator().clone();
    let cell = netlist
        .cell_ids()
        .max_by_key(|&c| netlist.nets_of_cell(c).len())
        .unwrap();
    let mut ripped = placement.clone();
    ripped.remove_cell(cell);
    let slots: Vec<Slot> = (0..48)
        .map(|i| {
            let row = i % circuit.num_rows();
            Slot {
                row,
                index: (i * 7) % (ripped.row(row).len() + 1),
            }
        })
        .collect();
    const REPS: usize = 200;
    let naive_trial_ns = time_ns(REPS, || {
        for &slot in &slots {
            let pos = ripped.trial_position(cell, slot);
            black_box(evaluator.cell_cost_at(&ripped, cell, pos));
        }
    });
    let mut scorer = TrialScorer::for_evaluator(&evaluator);
    let kernel_trial_ns = time_ns(REPS, || {
        scorer.prepare_cell(&evaluator, &ripped, cell);
        for &slot in &slots {
            let pos = ripped.trial_position(cell, slot);
            black_box(scorer.prepared_cost_at(pos));
        }
    });

    // -- Naive-vs-kernel full evaluation head-to-head (the kernel is forced
    //    onto the full-recompute path each rep), plus the steady-state cost
    //    of refreshing an unchanged placement (the cache-hit path the engine
    //    loop sees between iterations).
    let naive_eval_ns = time_ns(REPS, || {
        black_box(evaluator.net_lengths(&placement));
    });
    let mut cache = NetLengthCache::new();
    let kernel_eval_ns = time_ns(REPS, || {
        cache.invalidate();
        black_box(cache.refresh(&evaluator, &mut scorer, &placement).len());
    });
    cache.refresh(&evaluator, &mut scorer, &placement);
    let cached_eval_ns = time_ns(REPS, || {
        black_box(cache.refresh(&evaluator, &mut scorer, &placement).len());
    });

    // -- Assemble JSON (hand-rolled: the vendored serde is a no-op shim).
    let mut phases = String::new();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let ns = profile.time(*phase).as_nanos();
        let evals = profile.net_evals(*phase);
        if i > 0 {
            phases.push_str(",\n");
        }
        phases.push_str(&format!(
            "    {{\"phase\": \"{}\", \"total_ns\": {}, \"net_evals\": {}, \"net_evals_per_sec\": {:.0}}}",
            phase.label(),
            ns,
            evals,
            evals_per_sec(evals, ns)
        ));
    }
    let json = format!(
        "{{\n\
         \x20 \"schema_version\": 1,\n\
         \x20 \"report\": \"BENCH_PR2\",\n\
         \x20 \"circuit\": \"s1196\",\n\
         \x20 \"cells\": {cells},\n\
         \x20 \"nets\": {nets},\n\
         \x20 \"iterations\": {iters},\n\
         \x20 \"total_run_ns\": {run_ns},\n\
         \x20 \"total_net_evals\": {total_evals},\n\
         \x20 \"net_evals_per_sec\": {total_rate:.0},\n\
         \x20 \"trial_positions\": {trials},\n\
         \x20 \"phases\": [\n{phases}\n  ],\n\
         \x20 \"head_to_head\": {{\n\
         \x20   \"trial_scoring_48slots\": {{\"reps\": {reps}, \"naive_ns\": {ntr}, \"kernel_ns\": {ktr}, \"speedup\": {str:.2}}},\n\
         \x20   \"full_net_lengths\": {{\"reps\": {reps}, \"naive_ns\": {nev}, \"kernel_ns\": {kev}, \"speedup\": {sev:.2}}},\n\
         \x20   \"refresh_unchanged\": {{\"reps\": {reps}, \"kernel_ns\": {cev}}}\n\
         \x20 }}\n\
         }}\n",
        cells = netlist.num_cells(),
        nets = netlist.num_nets(),
        iters = iters,
        run_ns = run_ns,
        total_evals = profile.total_net_evals(),
        total_rate = evals_per_sec(profile.total_net_evals(), run_ns),
        trials = profile.trial_positions,
        phases = phases,
        reps = REPS,
        ntr = naive_trial_ns,
        ktr = kernel_trial_ns,
        str = naive_trial_ns as f64 / kernel_trial_ns.max(1) as f64,
        nev = naive_eval_ns,
        kev = kernel_eval_ns,
        sev = naive_eval_ns as f64 / kernel_eval_ns.max(1) as f64,
        cev = cached_eval_ns,
    );

    std::fs::write(&out_path, &json).expect("write perf report");
    println!("wrote {out_path}");
    print!("{json}");
}
