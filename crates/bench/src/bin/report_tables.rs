//! `report_tables` — renders the paper-style text tables from a scenario
//! matrix JSON report (the artifact `scenario_matrix` writes).
//!
//! The five bespoke `table*` binaries used to re-run the experiments for
//! every table; this renderer replaces them by formatting the tables from
//! the **already-executed** matrix, so one `scenario_matrix` run (the same
//! one CI archives and golden-checks) feeds every table:
//!
//! * **Runtime table** (Table 1/4 shape) — modeled runtime of every matrix
//!   strategy per circuit.
//! * **Type II tables** (Table 2/3 shape) — fixed vs random row pattern,
//!   one table per objective mix, entries annotated with the achieved
//!   percentage of the circuit's best quality when they fall short (the
//!   bracket convention of the paper).
//! * **Quality table** (Table 5 shape) — best µ(s) per strategy, including
//!   the island portfolios racing SimE against the GA/SA/TS baselines.
//! * **Portfolio scaling** — modeled runtime and µ(s) of the mixed
//!   portfolio as the island count grows (the portfolio's rank sweep).
//!
//! Usage: `report_tables [--input PATH]` (default `SCENARIO_MATRIX.json`).
//!
//! Regenerate the input with `cargo run --release -p bench --bin
//! scenario_matrix -- --quick --out SCENARIO_MATRIX.json`; pass `--full` to
//! the matrix for the bigger grid. The renderer only reads Modeled-backend
//! records: the determinism contract makes every other backend's trajectory
//! identical, so they would only duplicate rows.

use bench::json::Json;
use bench::{fmt_parallel_entry, fmt_seconds};
use std::collections::BTreeMap;

/// One Modeled-backend record of the matrix report.
#[derive(Debug, Clone)]
struct Rec {
    circuit: String,
    strategy: String,
    ranks: usize,
    objectives: String,
    best_mu: f64,
    modeled_seconds: f64,
}

/// Extracts the Modeled-backend records from a parsed matrix report.
fn collect_records(doc: &Json) -> Result<Vec<Rec>, String> {
    let Some(Json::Array(records)) = doc.get("records") else {
        return Err("report has no `records` array".into());
    };
    let mut out = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let field = |name: &str| {
            rec.string(name)
                .map(str::to_string)
                .ok_or_else(|| format!("record {i}: missing string `{name}`"))
        };
        let num = |name: &str| {
            rec.number(name)
                .ok_or_else(|| format!("record {i}: missing number `{name}`"))
        };
        if field("backend")? != "modeled" {
            continue;
        }
        out.push(Rec {
            circuit: field("circuit")?,
            strategy: field("strategy")?,
            ranks: num("ranks")? as usize,
            objectives: field("objectives")?,
            best_mu: num("best_mu")?,
            modeled_seconds: num("modeled_seconds")?,
        });
    }
    if out.is_empty() {
        return Err("report contains no modeled-backend records".into());
    }
    Ok(out)
}

/// Circuit names in first-appearance order (the matrix emits them in suite
/// order, which the tables should keep).
fn circuits(recs: &[Rec]) -> Vec<String> {
    let mut seen = Vec::new();
    for r in recs {
        if !seen.contains(&r.circuit) {
            seen.push(r.circuit.clone());
        }
    }
    seen
}

fn find<'a>(recs: &'a [Rec], circuit: &str, strategy: &str, objectives: &str) -> Option<&'a Rec> {
    recs.iter()
        .find(|r| r.circuit == circuit && r.strategy == strategy && r.objectives == objectives)
}

/// The best µ(s) any strategy reached on a circuit under an objective mix —
/// the quality reference the bracket annotations compare against (the
/// matrix carries no serial baseline).
fn best_mu_on(recs: &[Rec], circuit: &str, objectives: &str) -> f64 {
    recs.iter()
        .filter(|r| r.circuit == circuit && r.objectives == objectives)
        .map(|r| r.best_mu)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Runtime table (Table 1/4 shape): modeled seconds per matrix strategy.
fn render_runtime_table(recs: &[Rec]) -> String {
    const STRATEGIES: [&str; 4] = ["type1", "type2_fixed", "type2_random", "type3"];
    let mut out = String::from("== Runtime by strategy (modeled seconds, wirelength+power) ==\n");
    out.push_str(&format!(
        "{:<8} {:>8} {:>12} {:>13} {:>8}\n",
        "Ckt", "type1", "type2_fixed", "type2_random", "type3"
    ));
    for circuit in circuits(recs) {
        let cells: Vec<String> = STRATEGIES
            .iter()
            .map(|s| match find(recs, &circuit, s, "wp") {
                Some(r) => fmt_seconds(r.modeled_seconds),
                None => "-".into(),
            })
            .collect();
        if cells.iter().all(|c| c == "-") {
            continue;
        }
        out.push_str(&format!(
            "{:<8} {:>8} {:>12} {:>13} {:>8}\n",
            circuit, cells[0], cells[1], cells[2], cells[3]
        ));
    }
    out
}

/// Type II table (Table 2/3 shape) for one objective mix: fixed vs random
/// row pattern, time entries annotated with the achieved percentage of the
/// circuit's best quality when short of it.
fn render_type2_table(recs: &[Rec], objectives: &str, title: &str) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<8} {:>7} | {:>14} | {:>14}\n",
        "Ckt", "mu(s)", "fixed", "random"
    ));
    for circuit in circuits(recs) {
        let reference = best_mu_on(recs, &circuit, objectives);
        let fixed = find(recs, &circuit, "type2_fixed", objectives);
        let random = find(recs, &circuit, "type2_random", objectives);
        if fixed.is_none() && random.is_none() {
            continue;
        }
        let entry = |r: Option<&Rec>| match r {
            Some(r) => fmt_parallel_entry(r.modeled_seconds, r.best_mu / reference),
            None => "-".into(),
        };
        out.push_str(&format!(
            "{:<8} {:>7.3} | {:>14} | {:>14}\n",
            circuit,
            reference,
            entry(fixed),
            entry(random)
        ));
    }
    out
}

/// Quality table (Table 5 shape): best µ(s) per strategy, including the
/// island portfolios.
fn render_quality_table(recs: &[Rec]) -> String {
    const COLUMNS: [&str; 6] = [
        "type1",
        "type2_fixed",
        "type2_random",
        "type3",
        "portfolio_mixed",
        "portfolio_baselines",
    ];
    let mut out = String::from("== Quality by strategy (best mu(s), wirelength+power) ==\n");
    out.push_str(&format!(
        "{:<8} {:>6} {:>8} {:>8} {:>6} {:>9} {:>9}\n",
        "Ckt", "T-I", "T-II(f)", "T-II(r)", "T-III", "Pf(mix)", "Pf(base)"
    ));
    for circuit in circuits(recs) {
        let cells: Vec<String> = COLUMNS
            .iter()
            .map(|s| {
                // The portfolio sweeps its rank axis; report its best cell.
                recs.iter()
                    .filter(|r| r.circuit == circuit && r.objectives == "wp" && &r.strategy == s)
                    .map(|r| r.best_mu)
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .map(|mu| {
                if mu.is_finite() {
                    format!("{mu:.3}")
                } else {
                    "-".into()
                }
            })
            .collect();
        if cells.iter().all(|c| c == "-") {
            continue;
        }
        out.push_str(&format!(
            "{:<8} {:>6} {:>8} {:>8} {:>6} {:>9} {:>9}\n",
            circuit, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        ));
    }
    out
}

/// Portfolio scaling table: the mixed portfolio across its island-count
/// sweep, `seconds (µ·1000)` per cell.
fn render_portfolio_table(recs: &[Rec]) -> String {
    let mut ranks: Vec<usize> = recs
        .iter()
        .filter(|r| r.strategy == "portfolio_mixed")
        .map(|r| r.ranks)
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    let mut out = String::from("== Mixed portfolio scaling (modeled seconds @ best mu(s)) ==\n");
    if ranks.is_empty() {
        out.push_str("(no portfolio records in this report)\n");
        return out;
    }
    out.push_str(&format!("{:<8}", "Ckt"));
    for r in &ranks {
        out.push_str(&format!(" {:>14}", format!("islands={r}")));
    }
    out.push('\n');
    for circuit in circuits(recs) {
        let mut cells: BTreeMap<usize, String> = BTreeMap::new();
        for rec in recs.iter().filter(|r| {
            r.circuit == circuit && r.strategy == "portfolio_mixed" && r.objectives == "wp"
        }) {
            cells.insert(
                rec.ranks,
                format!("{} @ {:.3}", fmt_seconds(rec.modeled_seconds), rec.best_mu),
            );
        }
        if cells.is_empty() {
            continue;
        }
        out.push_str(&format!("{circuit:<8}"));
        for r in &ranks {
            out.push_str(&format!(
                " {:>14}",
                cells.get(r).cloned().unwrap_or_else(|| "-".into())
            ));
        }
        out.push('\n');
    }
    out
}

fn render_all(doc: &Json) -> Result<String, String> {
    let recs = collect_records(doc)?;
    let mut out = String::new();
    out.push_str(&render_runtime_table(&recs));
    out.push('\n');
    out.push_str(&render_type2_table(
        &recs,
        "wp",
        "Type II fixed vs random (wirelength+power, seconds, % of best quality in brackets)",
    ));
    out.push('\n');
    out.push_str(&render_type2_table(
        &recs,
        "wpd",
        "Type II fixed vs random (wirelength+power+delay, seconds, % of best quality in brackets)",
    ));
    out.push('\n');
    out.push_str(&render_quality_table(&recs));
    out.push('\n');
    out.push_str(&render_portfolio_table(&recs));
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("report_tables [--input PATH]   (default SCENARIO_MATRIX.json)");
        return;
    }
    let input = match args.iter().position(|a| a == "--input") {
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => {
                eprintln!("--input requires a path");
                std::process::exit(2);
            }
        },
        None => "SCENARIO_MATRIX.json".into(),
    };
    let text = std::fs::read_to_string(&input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e} (run scenario_matrix first)");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {input}: {e}");
        std::process::exit(2);
    });
    match render_all(&doc) {
        Ok(tables) => {
            println!("rendering {input}");
            println!();
            print!("{tables}");
        }
        Err(e) => {
            eprintln!("{input}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        circuit: &str,
        strategy: &str,
        ranks: usize,
        objectives: &str,
        backend: &str,
        mu: f64,
        seconds: f64,
    ) -> String {
        format!(
            "{{\"scenario\": \"{circuit}.{strategy}.r{ranks}.i4.{objectives}\", \
             \"circuit\": \"{circuit}\", \"strategy\": \"{strategy}\", \"ranks\": {ranks}, \
             \"iterations\": 4, \"objectives\": \"{objectives}\", \"backend\": \"{backend}\", \
             \"eval_chunks\": 1, \"best_mu\": {mu}, \"modeled_seconds\": {seconds}, \
             \"wall_seconds\": 0.1, \"comm_messages\": 3, \"comm_bytes\": 100}}"
        )
    }

    fn sample_doc() -> Json {
        let records = [
            record("s1196", "type1", 4, "wp", "modeled", 0.71, 90.0),
            record("s1196", "type2_fixed", 4, "wp", "modeled", 0.69, 33.0),
            record("s1196", "type2_random", 4, "wp", "modeled", 0.72, 32.0),
            record("s1196", "type2_fixed", 4, "wpd", "modeled", 0.61, 35.0),
            record("s1196", "type2_random", 4, "wpd", "modeled", 0.63, 34.0),
            record("s1196", "type3", 4, "wp", "modeled", 0.73, 95.0),
            record("s1196", "portfolio_mixed", 2, "wp", "modeled", 0.70, 80.0),
            record("s1196", "portfolio_mixed", 4, "wp", "modeled", 0.74, 82.0),
            record(
                "s1196",
                "portfolio_baselines",
                4,
                "wp",
                "modeled",
                0.66,
                60.0,
            ),
            // A threaded duplicate that must be ignored.
            record("s1196", "type1", 4, "wp", "threaded(2)", 0.71, 90.0),
        ]
        .join(",");
        Json::parse(&format!("{{\"records\": [{records}]}}")).unwrap()
    }

    #[test]
    fn collects_only_modeled_records() {
        let recs = collect_records(&sample_doc()).unwrap();
        assert_eq!(recs.len(), 9);
        assert!(recs.iter().all(|r| r.circuit == "s1196"));
    }

    #[test]
    fn runtime_table_has_one_row_per_circuit() {
        let recs = collect_records(&sample_doc()).unwrap();
        let table = render_runtime_table(&recs);
        assert!(table.contains("s1196"), "{table}");
        assert!(table.contains("90"), "{table}");
        assert!(table.contains("32"), "{table}");
    }

    #[test]
    fn type2_table_annotates_quality_deficits() {
        let recs = collect_records(&sample_doc()).unwrap();
        let table = render_type2_table(&recs, "wp", "t");
        // The fixed pattern (0.69) falls short of the circuit's best µ
        // (0.74 from the portfolio): percentage in brackets.
        assert!(table.contains("33 (93)"), "{table}");
        let wpd = render_type2_table(&recs, "wpd", "t");
        // wpd's best is type2_random itself: no bracket on that entry.
        assert!(wpd.contains(" 34\n"), "{wpd}");
    }

    #[test]
    fn quality_table_includes_the_portfolios() {
        let recs = collect_records(&sample_doc()).unwrap();
        let table = render_quality_table(&recs);
        assert!(table.contains("0.740"), "{table}"); // best mixed-portfolio cell
        assert!(table.contains("0.660"), "{table}");
    }

    #[test]
    fn portfolio_table_sweeps_the_island_axis() {
        let recs = collect_records(&sample_doc()).unwrap();
        let table = render_portfolio_table(&recs);
        assert!(table.contains("islands=2"), "{table}");
        assert!(table.contains("islands=4"), "{table}");
        assert!(table.contains("@ 0.740"), "{table}");
    }

    #[test]
    fn empty_reports_are_an_error() {
        let doc = Json::parse("{\"records\": []}").unwrap();
        assert!(collect_records(&doc).is_err());
        let doc = Json::parse("{}").unwrap();
        assert!(collect_records(&doc).is_err());
    }

    #[test]
    fn render_all_produces_every_section() {
        let out = render_all(&sample_doc()).unwrap();
        assert!(out.contains("== Runtime by strategy"));
        assert!(out.contains("== Type II fixed vs random (wirelength+power,"));
        assert!(out.contains("== Type II fixed vs random (wirelength+power+delay,"));
        assert!(out.contains("== Quality by strategy"));
        assert!(out.contains("== Mixed portfolio scaling"));
    }
}
