//! Experiment E0 — reproduces the Section 4 profiling analysis.
//!
//! The paper profiles the serial implementation with gprof and reports that
//! ~98.4 % (two objectives) / ~98.5 % (three objectives) of the time is spent
//! in allocation, ~0.5–0.6 % in wirelength calculation, ~0.2–0.4 % in
//! goodness evaluation and ~0.2 % in delay calculation. This binary runs the
//! serial engine on the benchmark circuits and prints the same breakdown,
//! both by wall-clock time and by deterministic work counts.
//!
//! Usage: `cargo run --release -p bench --bin profile_breakdown [--full]`

use bench::{iteration_scale, paper_engine, print_header, scaled_iterations};
use sime_core::profile::Phase;
use vlsi_netlist::bench_suite::PaperCircuit;
use vlsi_place::cost::Objectives;

fn main() {
    let scale = iteration_scale();
    print_header(
        "Section 4 — serial runtime breakdown by SimE operator",
        scale,
    );

    for objectives in [
        Objectives::WirelengthPower,
        Objectives::WirelengthPowerDelay,
    ] {
        let iterations = scaled_iterations(500, scale.max(0.1));
        println!(
            "\n-- objectives: {} ({iterations} iterations on s1196) --",
            objectives.label()
        );
        let engine = paper_engine(PaperCircuit::S1196, objectives, iterations);
        let result = engine.run();
        println!("{}", result.profile.to_table());
        println!(
            "paper reference: allocation 98.4–98.5 %, wirelength 0.5–0.6 %, goodness 0.2–0.4 %, delay 0.2 %"
        );
        let alloc_time = result.profile.time_fraction(Phase::Allocation);
        println!(
            "allocation share measured here: {:.1} % (time), {:.1} % (work units)",
            100.0 * alloc_time,
            100.0 * result.profile.work_fraction(Phase::Allocation)
        );
    }
}
