//! Experiment E2 — reproduces Table 2: Type II (domain decomposition) for the
//! wirelength + power objectives, with the fixed and the random row patterns.
//!
//! The serial baseline runs the paper's 3500 iterations; the parallel runs
//! use 4000 iterations plus 500 for every additional processor beyond two
//! (the extra iterations compensate for the restricted cell mobility of the
//! decomposition). A parallel entry that fails to reach the serial quality is
//! annotated with the achieved percentage in brackets, as in the paper.
//!
//! Usage: `cargo run --release -p bench --bin table2_type2_wp [--full]`

use bench::{
    fmt_parallel_entry, fmt_seconds, iteration_scale, paper_engine, print_header, scaled_iterations,
};
use cluster_sim::timeline::ClusterConfig;
use sime_parallel::report::run_serial_baseline;
use sime_parallel::type2::{run_type2, RowPattern, Type2Config};
use vlsi_netlist::bench_suite::PaperCircuit;
use vlsi_place::cost::Objectives;

fn main() {
    let scale = iteration_scale();
    print_header(
        "Table 2 — Type II parallel SimE, wirelength + power, fixed vs random row pattern",
        scale,
    );

    println!(
        "\n{:<8} {:>7} {:>8} | {:>26} | {:>26}",
        "Ckt", "mu(s)", "Seq.", "fixed p=2..5", "random p=2..5"
    );
    for circuit in PaperCircuit::ALL {
        let serial_iterations = scaled_iterations(3500, scale);
        let engine = paper_engine(circuit, Objectives::WirelengthPower, serial_iterations);
        let compute = ClusterConfig::paper_cluster(2).compute;
        let baseline = run_serial_baseline(&engine, &compute);
        let serial_mu = baseline.best_mu();

        let mut row = format!(
            "{:<8} {:>7.3} {:>8}",
            circuit.name(),
            serial_mu,
            fmt_seconds(baseline.modeled_seconds)
        );
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            row.push_str(" |");
            for ranks in 2..=5usize {
                let iterations = scaled_iterations(4000 + 500 * (ranks - 2), scale);
                let outcome = run_type2(
                    &engine,
                    ClusterConfig::paper_cluster(ranks),
                    Type2Config {
                        ranks,
                        iterations,
                        pattern,
                    },
                );
                row.push_str(&format!(
                    " {:>8}",
                    fmt_parallel_entry(
                        outcome.modeled_seconds,
                        outcome.quality_fraction_of(serial_mu)
                    )
                ));
            }
        }
        println!("{row}");
    }
    println!("\nexpected shape: runtimes fall as p grows for both patterns; the random row");
    println!("pattern gives better times/quality than the fixed pattern; some entries fall");
    println!("slightly short of the serial quality (percentage in brackets).");
    println!("paper reference (s1196): seq 92 s; fixed 45/36/33/29 s; random 50/38/32/31 s");
}
