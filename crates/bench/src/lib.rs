//! Shared harness utilities for the table-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables (see the
//! per-experiment index in `DESIGN.md`). The runs are driven by the same
//! engine and cluster models as the library tests; the only knob is the
//! *iteration scale*: by default each binary runs a scaled-down iteration
//! schedule (`SIME_SCALE`, default 0.02 × the paper's iteration counts) so
//! that the full table regenerates in seconds. Pass `--full` or set
//! `SIME_SCALE=1.0` to run the paper's exact schedule.

#![warn(missing_docs)]

pub mod json;

use sime_core::engine::{SimEConfig, SimEEngine};
use std::sync::Arc;
use vlsi_netlist::bench_suite::{paper_circuit, PaperCircuit};
use vlsi_place::cost::Objectives;

/// Iteration scale read from the command line (`--full`, `--scale X`) or the
/// `SIME_SCALE` environment variable. Defaults to 0.02.
pub fn iteration_scale() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full") {
        return 1.0;
    }
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse::<f64>().ok()) {
            return v.clamp(0.001, 1.0);
        }
    }
    std::env::var("SIME_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.02)
        .clamp(0.001, 1.0)
}

/// Applies the iteration scale to one of the paper's iteration counts,
/// keeping at least 20 iterations so the runs stay meaningful.
pub fn scaled_iterations(paper_iterations: usize, scale: f64) -> usize {
    ((paper_iterations as f64 * scale).round() as usize).max(20)
}

/// Builds a SimE engine for one of the paper's circuits with the paper's
/// default operators and the given iteration budget.
pub fn paper_engine(
    circuit: PaperCircuit,
    objectives: Objectives,
    iterations: usize,
) -> SimEEngine {
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(objectives, circuit.num_rows(), iterations);
    SimEEngine::new(netlist, config)
}

/// Formats a modeled runtime in seconds the way the paper's tables do
/// (whole seconds for large values, one decimal below 10 s).
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds >= 10.0 {
        format!("{:.0}", seconds)
    } else {
        format!("{:.1}", seconds)
    }
}

/// Formats a parallel entry: the modeled time, with the achieved percentage
/// of the serial quality in brackets when the run fell short of it (the
/// convention used in Tables 2 and 3).
pub fn fmt_parallel_entry(seconds: f64, quality_fraction: f64) -> String {
    if quality_fraction >= 0.999 {
        fmt_seconds(seconds)
    } else {
        format!("{} ({:.0})", fmt_seconds(seconds), quality_fraction * 100.0)
    }
}

/// Prints the standard table header used by all harness binaries.
pub fn print_header(title: &str, scale: f64) {
    println!("== {title} ==");
    if (scale - 1.0).abs() < 1e-9 {
        println!("(full paper iteration schedule)");
    } else {
        println!("(iteration schedule scaled by {scale}; pass --full for the paper's schedule)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_iterations_has_a_floor() {
        assert_eq!(scaled_iterations(3500, 0.001), 20);
        assert_eq!(scaled_iterations(3500, 1.0), 3500);
        assert_eq!(scaled_iterations(4000, 0.02), 80);
    }

    #[test]
    fn seconds_formatting_matches_table_style() {
        assert_eq!(fmt_seconds(92.4), "92");
        assert_eq!(fmt_seconds(3.21), "3.2");
    }

    #[test]
    fn parallel_entry_shows_quality_deficit() {
        assert_eq!(fmt_parallel_entry(45.0, 1.0), "45");
        assert_eq!(fmt_parallel_entry(36.0, 0.95), "36 (95)");
    }

    #[test]
    fn paper_engine_builds_for_every_circuit() {
        for c in PaperCircuit::ALL {
            let engine = paper_engine(c, Objectives::WirelengthPower, 10);
            assert_eq!(engine.evaluator().netlist().num_cells(), c.cell_count());
            assert_eq!(engine.config().num_rows, c.num_rows());
        }
    }
}
