//! Deterministic synthetic circuit generator.
//!
//! The paper evaluates on ISCAS-89 sequential benchmark circuits. Those
//! netlists cannot be shipped with this repository, so the benchmark suite
//! regenerates stand-ins with the same *size and connectivity statistics*:
//! the published cell count, realistic average fanout (≈ 2–3 sinks per net
//! with a long tail of high-fanout nets), a levelised combinational structure
//! that yields deep critical paths, and an ISCAS-like population of primary
//! inputs, primary outputs and flip-flops.
//!
//! Generation is fully deterministic for a given [`GeneratorConfig`] (seeded
//! ChaCha8 stream), so every experiment in the workspace operates on exactly
//! the same circuits.
//!
//! Beyond the pure standard-cell circuits, [`MixedSizeSpec`] layers
//! *mixed-size* features on top: multi-row macro blocks and a fixed pad
//! ring. Mixed circuits flow through the same interchange files as everyone
//! else — the generated netlist round-trips through the Bookshelf pair and
//! its fixed cells carry into `.pl` placements:
//!
//! ```
//! use vlsi_netlist::bookshelf::{parse_bookshelf, write_bookshelf, netlists_identical};
//! use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig, MixedSizeSpec};
//!
//! let cfg = GeneratorConfig::sized("doc_mix", 150, 42).with_mixed(MixedSizeSpec {
//!     num_macros: 2,
//!     macro_height: 3,
//!     pad_ring: true,
//! });
//! let netlist = CircuitGenerator::new(cfg).generate();
//! assert!(netlist.has_fixed_cells());
//! assert_eq!(netlist.stats().macros, 2);
//!
//! let pair = write_bookshelf(&netlist);
//! let reloaded = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
//! assert!(netlists_identical(&netlist, &reloaded));
//! ```

use crate::{Cell, CellId, CellKind, Net, Netlist, NetlistBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic circuit generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Circuit name recorded in the netlist.
    pub name: String,
    /// Total number of cells (inputs + outputs + flip-flops + logic).
    pub num_cells: usize,
    /// Number of primary input pads.
    pub num_inputs: usize,
    /// Number of primary output pads.
    pub num_outputs: usize,
    /// Number of flip-flops.
    pub num_flip_flops: usize,
    /// Number of logic levels between path sources and sinks. Deeper circuits
    /// produce longer critical paths.
    pub logic_depth: usize,
    /// Average fan-in of a logic cell (typically 2–3 for gate-level circuits).
    pub avg_fanin: f64,
    /// RNG seed; the same seed always produces the same circuit.
    pub seed: u64,
    /// Mixed-size extension: `Some` adds macro blocks (and optionally pins
    /// the I/O pads into a pad ring) *on top of* the standard-cell circuit.
    /// `None` reproduces the original pure standard-cell generator
    /// bit-for-bit.
    pub mixed: Option<MixedSizeSpec>,
}

/// Mixed-size additions layered over the standard-cell generator.
///
/// Macros are generated *after* the standard connectivity pass, from the
/// same seeded RNG stream — so for a given seed, the standard-cell prefix of
/// a mixed circuit (names, kinds, widths, delays and the standard-to-standard
/// edges) is identical to the pure circuit generated with `mixed: None`; only
/// the pad-ring `fixed` flags, the appended macros and the per-net switching
/// probabilities (drawn after the macro wiring) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixedSizeSpec {
    /// Number of macro blocks appended after the standard cells.
    pub num_macros: usize,
    /// Footprint height of each macro, in rows.
    pub macro_height: u32,
    /// Mark every primary input/output pad as fixed (a pad ring).
    pub pad_ring: bool,
}

impl GeneratorConfig {
    /// A reasonable configuration for a circuit of `num_cells` cells, with
    /// ISCAS-like proportions of I/O and sequential elements.
    pub fn sized(name: impl Into<String>, num_cells: usize, seed: u64) -> Self {
        let num_inputs = (num_cells / 40).clamp(4, 64);
        let num_outputs = (num_cells / 35).clamp(4, 80);
        let num_flip_flops = (num_cells / 12).clamp(2, 200);
        GeneratorConfig {
            name: name.into(),
            num_cells,
            num_inputs,
            num_outputs,
            num_flip_flops,
            logic_depth: 12,
            avg_fanin: 2.2,
            seed,
            mixed: None,
        }
    }

    /// Returns the configuration with mixed-size additions enabled.
    ///
    /// The standard-cell prefix of the resulting circuit is identical to the
    /// `mixed: None` circuit of the same seed (up to pad-ring `fixed`
    /// flags); see [`MixedSizeSpec`].
    ///
    /// ```
    /// use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig, MixedSizeSpec};
    ///
    /// let base = GeneratorConfig::sized("doc_wm", 120, 7);
    /// let mixed = CircuitGenerator::new(base.clone().with_mixed(MixedSizeSpec {
    ///     num_macros: 1,
    ///     macro_height: 2,
    ///     pad_ring: false,
    /// }))
    /// .generate();
    /// let pure = CircuitGenerator::new(base).generate();
    /// // Same standard cells, one extra macro appended at the end.
    /// assert_eq!(mixed.num_cells(), pure.num_cells() + 1);
    /// assert_eq!(mixed.cells()[..pure.num_cells()], pure.cells()[..]);
    /// ```
    pub fn with_mixed(mut self, mixed: MixedSizeSpec) -> Self {
        self.mixed = Some(mixed);
        self
    }

    /// Number of plain logic cells implied by the configuration.
    pub fn num_logic(&self) -> usize {
        self.num_cells
            .saturating_sub(self.num_inputs + self.num_outputs + self.num_flip_flops)
    }
}

/// Synthetic circuit generator. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct CircuitGenerator {
    config: GeneratorConfig,
}

impl CircuitGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        CircuitGenerator { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the configuration asks for fewer cells than the combined
    /// number of inputs, outputs and flip-flops, or for a zero logic depth.
    pub fn generate(&self) -> Netlist {
        let cfg = &self.config;
        assert!(
            cfg.num_cells
                >= cfg.num_inputs + cfg.num_outputs + cfg.num_flip_flops + cfg.logic_depth,
            "configuration does not leave room for logic cells"
        );
        assert!(cfg.logic_depth >= 1, "logic depth must be at least 1");

        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut builder = NetlistBuilder::new(cfg.name.clone());
        // Pad-ring circuits pin every I/O pad; everything else about the
        // standard-cell flow is untouched.
        let pad_fixed = cfg.mixed.is_some_and(|m| m.pad_ring);

        // ----- cells ---------------------------------------------------
        // Level 0: inputs. Levels 1..=logic_depth: logic and flip-flops.
        // Level logic_depth + 1: outputs.
        let num_logic = cfg.num_logic();
        let mut level_of: Vec<usize> = Vec::with_capacity(cfg.num_cells);
        let mut ids_by_level: Vec<Vec<CellId>> = vec![Vec::new(); cfg.logic_depth + 2];

        for i in 0..cfg.num_inputs {
            let mut pad = Cell::new(format!("pi{i}"), CellKind::Input, 1, 0.0);
            pad.fixed = pad_fixed;
            let id = builder.add_cell(pad);
            level_of.push(0);
            ids_by_level[0].push(id);
        }

        // Interleave logic and flip-flops across the internal levels.
        let internal = num_logic + cfg.num_flip_flops;
        let mut ff_left = cfg.num_flip_flops;
        for i in 0..internal {
            let level = 1 + (i * cfg.logic_depth) / internal.max(1);
            let level = level.min(cfg.logic_depth);
            // Spread flip-flops uniformly through the internal cells.
            let is_ff = ff_left > 0 && rng.gen_ratio(ff_left as u32, (internal - i) as u32);
            let (kind, name, delay) = if is_ff {
                ff_left -= 1;
                (CellKind::FlipFlop, format!("ff{i}"), 0.20)
            } else {
                (
                    CellKind::Logic,
                    format!("g{i}"),
                    0.05 + rng.gen::<f64>() * 0.15,
                )
            };
            let width = rng.gen_range(2..=8u32);
            let id = builder.add_cell(Cell::new(name, kind, width, delay));
            level_of.push(level);
            ids_by_level[level].push(id);
        }

        let out_level = cfg.logic_depth + 1;
        for i in 0..cfg.num_outputs {
            let mut pad = Cell::new(format!("po{i}"), CellKind::Output, 1, 0.0);
            pad.fixed = pad_fixed;
            let id = builder.add_cell(pad);
            level_of.push(out_level);
            ids_by_level[out_level].push(id);
        }

        let total_cells = builder.num_cells();

        // ----- connectivity --------------------------------------------
        // For every non-input cell choose fan-in drivers from earlier levels
        // (with a locality bias towards the immediately preceding levels),
        // then bundle each driver's sinks into a single net.
        let mut sinks_of: Vec<Vec<CellId>> = vec![Vec::new(); total_cells];

        // Cumulative candidate pool per level: cells at levels < l.
        let mut pool: Vec<CellId> = Vec::new();
        let mut pool_start_of_level: Vec<usize> = vec![0; cfg.logic_depth + 3];
        for l in 0..=out_level {
            pool_start_of_level[l] = pool.len();
            pool.extend(ids_by_level[l].iter().copied());
        }
        pool_start_of_level[out_level + 1] = pool.len();

        // Indexing (not iterating) `level_of` keeps the bounds check that
        // guards the builder/level bookkeeping staying in sync.
        #[allow(clippy::needless_range_loop)]
        for cell_idx in 0..total_cells {
            let id = CellId::from(cell_idx);
            let level = level_of[cell_idx];
            if level == 0 {
                continue; // primary inputs have no fan-in
            }
            let kind = builder_cell_kind(cell_idx, cfg, num_logic);
            let fanin = if kind == CellKind::Output {
                1
            } else {
                // Geometric-ish fan-in around avg_fanin, in 1..=4.
                let r: f64 = rng.gen();
                if r < 0.25 {
                    1
                } else if r < 0.25 + (cfg.avg_fanin - 1.5).clamp(0.0, 1.0) * 0.5 {
                    3
                } else if r > 0.95 {
                    4
                } else {
                    2
                }
            };
            // Candidates: all cells at levels strictly below `level`.
            let hi = pool_start_of_level[level];
            if hi == 0 {
                continue;
            }
            let lo = pool_start_of_level[level.saturating_sub(3)];
            for _ in 0..fanin {
                // 80 % local (within the previous three levels), 20 % global.
                let pick = if lo < hi && rng.gen_bool(0.8) {
                    rng.gen_range(lo..hi)
                } else {
                    rng.gen_range(0..hi)
                };
                let driver = pool[pick];
                if driver == id || sinks_of[driver.index()].contains(&id) {
                    continue;
                }
                sinks_of[driver.index()].push(id);
            }
        }

        // Every driver-capable cell that ended up with no sinks feeds a random
        // later cell so that no cell is dangling (outputs never drive).
        for cell_idx in 0..total_cells {
            let level = level_of[cell_idx];
            if level == out_level {
                continue;
            }
            if !sinks_of[cell_idx].is_empty() {
                continue;
            }
            let lo = pool_start_of_level[level + 1];
            let hi = pool.len();
            if lo >= hi {
                continue;
            }
            let pick = rng.gen_range(lo..hi);
            let sink = pool[pick];
            if sink != CellId::from(cell_idx) {
                sinks_of[cell_idx].push(sink);
            }
        }

        // ----- mixed-size additions ------------------------------------
        // Macro blocks are appended after the complete standard flow, so the
        // RNG stream (and thus the standard-cell prefix) is untouched. Each
        // macro is fed by a few internal drivers and drives a small net of
        // its own; both ends avoid the I/O boundary (inputs cannot sink,
        // outputs cannot drive).
        if let Some(mixed) = cfg.mixed {
            let internal_lo = pool_start_of_level[1];
            let internal_hi = pool_start_of_level[out_level];
            sinks_of.resize(total_cells + mixed.num_macros, Vec::new());
            for m in 0..mixed.num_macros {
                let width = rng.gen_range(16..=48u32);
                let id = builder.add_cell(Cell::macro_block(
                    format!("mb{m}"),
                    width,
                    mixed.macro_height,
                    0.20,
                ));
                if internal_lo >= internal_hi {
                    continue;
                }
                let fanin = rng.gen_range(2..=4usize);
                for _ in 0..fanin {
                    let driver = pool[rng.gen_range(internal_lo..internal_hi)];
                    if !sinks_of[driver.index()].contains(&id) {
                        sinks_of[driver.index()].push(id);
                    }
                }
                let fanout = rng.gen_range(2..=4usize);
                for _ in 0..fanout {
                    let sink = pool[rng.gen_range(internal_lo..pool.len())];
                    sinks_of[id.index()].push(sink);
                }
            }
        }

        // Build the nets: one net per driving cell.
        for (cell_idx, sink_slot) in sinks_of.iter_mut().enumerate() {
            if sink_slot.is_empty() {
                continue;
            }
            let mut sinks = std::mem::take(sink_slot);
            sinks.sort_unstable();
            sinks.dedup();
            // Switching probability: skewed towards low activity with a few
            // hot nets, as in real circuits.
            let base: f64 = rng.gen();
            let sprob = 0.02 + base * base * 0.6;
            builder.add_net(Net::new(
                format!("net_{cell_idx}"),
                CellId::from(cell_idx),
                sinks,
                sprob,
            ));
        }

        builder
            .build()
            .expect("generator must always produce a valid netlist")
    }
}

/// Kind of the cell at `cell_idx` given the deterministic layout order used by
/// `generate` (inputs, then internal cells, then outputs). Flip-flops are
/// interleaved with logic, so internal cells are reported as `Logic`; the only
/// distinction that matters for fan-in selection is `Output` vs the rest.
fn builder_cell_kind(cell_idx: usize, cfg: &GeneratorConfig, num_logic: usize) -> CellKind {
    if cell_idx < cfg.num_inputs {
        CellKind::Input
    } else if cell_idx < cfg.num_inputs + num_logic + cfg.num_flip_flops {
        CellKind::Logic
    } else {
        CellKind::Output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{extract_paths, PathExtractionConfig};

    fn small_cfg(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            name: "gen_test".into(),
            num_cells: 200,
            num_inputs: 8,
            num_outputs: 10,
            num_flip_flops: 12,
            logic_depth: 8,
            avg_fanin: 2.2,
            seed,
            mixed: None,
        }
    }

    #[test]
    fn generates_requested_cell_count() {
        let nl = CircuitGenerator::new(small_cfg(1)).generate();
        assert_eq!(nl.num_cells(), 200);
        let stats = nl.stats();
        assert_eq!(stats.inputs, 8);
        assert_eq!(stats.outputs, 10);
        assert_eq!(stats.flip_flops, 12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CircuitGenerator::new(small_cfg(7)).generate();
        let b = CircuitGenerator::new(small_cfg(7)).generate();
        assert_eq!(a.num_nets(), b.num_nets());
        for (na, nb) in a.nets().iter().zip(b.nets().iter()) {
            assert_eq!(na, nb);
        }
        for (ca, cb) in a.cells().iter().zip(b.cells().iter()) {
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CircuitGenerator::new(small_cfg(1)).generate();
        let b = CircuitGenerator::new(small_cfg(2)).generate();
        let same = a
            .nets()
            .iter()
            .zip(b.nets().iter())
            .all(|(x, y)| x.sinks == y.sinks);
        assert!(!same, "different seeds should give different connectivity");
    }

    #[test]
    fn fanout_statistics_are_realistic() {
        let nl = CircuitGenerator::new(small_cfg(3)).generate();
        let stats = nl.stats();
        assert!(
            stats.avg_fanout > 1.2 && stats.avg_fanout < 4.0,
            "average fanout {} outside the gate-level range",
            stats.avg_fanout
        );
        assert!(stats.nets > nl.num_cells() / 2);
    }

    #[test]
    fn circuits_have_deep_paths() {
        let nl = CircuitGenerator::new(small_cfg(4)).generate();
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        assert!(!paths.is_empty());
        assert!(
            paths[0].len() >= 3,
            "expected a critical path of depth >= 3, got {}",
            paths[0].len()
        );
    }

    #[test]
    fn every_net_has_sinks_and_valid_probability() {
        let nl = CircuitGenerator::new(small_cfg(5)).generate();
        for net in nl.nets() {
            assert!(!net.sinks.is_empty());
            assert!((0.0..=1.0).contains(&net.switching_prob));
        }
    }

    #[test]
    fn mixed_spec_appends_macros_and_pins_pads() {
        let mixed = MixedSizeSpec {
            num_macros: 3,
            macro_height: 4,
            pad_ring: true,
        };
        let nl = CircuitGenerator::new(small_cfg(6).with_mixed(mixed)).generate();
        let stats = nl.stats();
        assert_eq!(nl.num_cells(), 200 + 3);
        assert_eq!(stats.macros, 3);
        // Pad ring + macros are the only fixed cells.
        assert_eq!(stats.fixed_cells, stats.inputs + stats.outputs + 3);
        assert!(nl.has_fixed_cells());
        for m in 0..3 {
            let id = nl.cell_by_name(&format!("mb{m}")).unwrap();
            let cell = nl.cell(id);
            assert_eq!(cell.kind, CellKind::Macro);
            assert_eq!(cell.height, 4);
            assert!(cell.fixed);
            // Every macro is wired: it drives a net and is driven by one.
            assert!(!nl.nets_driven_by(id).is_empty());
            assert!(!nl.nets_feeding(id).is_empty());
        }
    }

    #[test]
    fn mixed_standard_cell_prefix_matches_the_pure_circuit() {
        // Same seed: the standard-cell prefix of the mixed circuit must be
        // identical to the pure circuit up to the pad-ring `fixed` flags.
        let pure = CircuitGenerator::new(small_cfg(9)).generate();
        let mixed = CircuitGenerator::new(small_cfg(9).with_mixed(MixedSizeSpec {
            num_macros: 2,
            macro_height: 3,
            pad_ring: true,
        }))
        .generate();
        for (a, b) in pure.cells().iter().zip(mixed.cells().iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.width, b.width);
            assert_eq!(a.switching_delay, b.switching_delay);
        }
        // Nets of the pure circuit are a prefix-preserving subset: every
        // standard net survives, possibly with macro sinks appended.
        assert!(mixed.num_nets() >= pure.num_nets());
    }

    #[test]
    #[should_panic(expected = "configuration does not leave room")]
    fn rejects_impossible_configuration() {
        let cfg = GeneratorConfig {
            num_cells: 10,
            num_inputs: 5,
            num_outputs: 5,
            num_flip_flops: 5,
            ..small_cfg(0)
        };
        CircuitGenerator::new(cfg).generate();
    }
}
