//! Nets (signal interconnections) and their identifiers.

use crate::CellId;
use serde::{Deserialize, Serialize};

/// Index of a net inside a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NetId {
    fn from(v: u32) -> Self {
        NetId(v)
    }
}

impl From<usize> for NetId {
    fn from(v: usize) -> Self {
        NetId(v as u32)
    }
}

impl std::fmt::Display for NetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A net: one driver cell and one or more sink cells.
///
/// The wirelength cost estimates the interconnect length of the net from the
/// placed positions of its driver and sinks; the power cost weights that
/// length with the net's switching probability `S_i`; the delay cost uses the
/// net's interconnect delay on critical paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Human-readable net name (unique within a netlist).
    pub name: String,
    /// The cell driving this net.
    pub driver: CellId,
    /// Cells reading this net (fan-out). Must be non-empty for a net to
    /// contribute to any cost.
    pub sinks: Vec<CellId>,
    /// Switching probability `S_i ∈ [0, 1]` used by the power cost.
    pub switching_prob: f64,
}

impl Net {
    /// Creates a net with the given driver, sinks and switching probability.
    pub fn new(
        name: impl Into<String>,
        driver: CellId,
        sinks: Vec<CellId>,
        switching_prob: f64,
    ) -> Self {
        Net {
            name: name.into(),
            driver,
            sinks,
            switching_prob,
        }
    }

    /// Number of pins on the net (driver + sinks).
    #[inline]
    pub fn pin_count(&self) -> usize {
        1 + self.sinks.len()
    }

    /// Iterator over every cell connected to the net (driver first).
    pub fn connected_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        std::iter::once(self.driver).chain(self.sinks.iter().copied())
    }

    /// `true` if `cell` is the driver or one of the sinks.
    pub fn connects(&self, cell: CellId) -> bool {
        self.driver == cell || self.sinks.contains(&cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_count_counts_driver_and_sinks() {
        let n = Net::new("n0", CellId(0), vec![CellId(1), CellId(2)], 0.5);
        assert_eq!(n.pin_count(), 3);
    }

    #[test]
    fn connected_cells_yields_driver_first() {
        let n = Net::new("n0", CellId(7), vec![CellId(1)], 0.5);
        let cells: Vec<_> = n.connected_cells().collect();
        assert_eq!(cells, vec![CellId(7), CellId(1)]);
    }

    #[test]
    fn connects_checks_both_roles() {
        let n = Net::new("n0", CellId(7), vec![CellId(1)], 0.5);
        assert!(n.connects(CellId(7)));
        assert!(n.connects(CellId(1)));
        assert!(!n.connects(CellId(2)));
    }

    #[test]
    fn net_id_display() {
        assert_eq!(NetId(3).to_string(), "n3");
        assert_eq!(NetId::from(3usize).index(), 3);
    }
}
