//! Bookshelf-style on-disk interchange (`.nodes` / `.nets` / `.pl` / `.scl`).
//!
//! The Bookshelf placement format (UCLA, used by the ISPD placement contests
//! and by benchmark surfaces such as BBOPlace-Bench) splits a layout across
//! one file per concern; this module implements the four files the workspace
//! needs so that whole layouts — circuit, placement and row geometry — can be
//! dumped, shipped and reloaded instead of regenerated:
//!
//! * **`.nodes`** — one line per cell: `name width height [terminal]`, with
//!   `NumNodes` / `NumTerminals` counts up front. I/O pads are `terminal`;
//!   multi-row macros carry their real row-span in the height slot.
//! * **`.nets`** — one `NetDegree : <d> <name>` group per net followed by
//!   `d` pin lines `cellname <I|O>`; the driver carries the `O` direction,
//!   sinks carry `I`.
//! * **`.pl`** — one line per cell: `name x y : N [/FIXED]`. Coordinates are
//!   integers (left edge / row bottom in layout units), so the serialisation
//!   is canonical and `write ∘ parse` is the identity on the text.
//! * **`.scl`** — one `CoreRow Horizontal … End` record per placement row
//!   (`Coordinate`, `Height`, `Sitewidth`, `SubrowOrigin`, `NumSites`).
//!
//! The workspace's netlists carry attributes the plain UCLA format has no
//! field for (cell kind, switching delay, fixed flag, net switching
//! probability), so the writer emits them as `#` *annotations* — a trailing
//! comment on the line they describe. `#` starts a comment in Bookshelf, so
//! tools that read the plain format see a standard file and skip the
//! annotations, while [`parse_bookshelf`] reads them back for a lossless
//! round-trip:
//!
//! ```text
//! UCLA nodes 1.0
//! # circuit mix600
//! NumNodes : 634
//! NumTerminals : 32
//!     pi0 1 1 terminal # in 0 fixed
//!     g14 5 1 # logic 0.0782
//!     mb0 40 3 # macro 0.2 fixed
//! ```
//!
//! Every writer has a streaming `*_to` variant over [`std::io::Write`] and
//! every parser a `*_from` variant over [`std::io::BufRead`], so 100k+-cell
//! synthetic layouts stream to and from disk without materialising the file
//! in memory; the `String`-based functions are thin wrappers.
//!
//! Parse errors carry the offending **file** ([`BookshelfFile`]) and the
//! 1-based line number within it, mirroring the error contract of
//! [`crate::format`].

use crate::{Cell, CellKind, Net, Netlist, NetlistBuilder, NetlistError};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};

/// Which of the interchange files an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BookshelfFile {
    /// The `.nodes` file.
    Nodes,
    /// The `.nets` file.
    Nets,
    /// The `.pl` placement file.
    Pl,
    /// The `.scl` row-geometry file.
    Scl,
}

impl std::fmt::Display for BookshelfFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BookshelfFile::Nodes => ".nodes",
            BookshelfFile::Nets => ".nets",
            BookshelfFile::Pl => ".pl",
            BookshelfFile::Scl => ".scl",
        })
    }
}

/// Errors produced by the Bookshelf parsers and file helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum BookshelfError {
    /// A line could not be parsed; carries the file, its 1-based line number
    /// and a human-readable reason.
    Syntax {
        /// Which file the line is in.
        file: BookshelfFile,
        /// 1-based line number within that file.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The files were syntactically valid but the assembled circuit is not.
    Semantic(NetlistError),
    /// A file-level problem: missing header, count mismatch, truncated group.
    Structure {
        /// Which file the problem is in.
        file: BookshelfFile,
        /// Human-readable description.
        reason: String,
    },
    /// An I/O error while reading or writing the files on disk.
    Io(String),
}

impl std::fmt::Display for BookshelfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BookshelfError::Syntax { file, line, reason } => {
                write!(f, "{file} line {line}: {reason}")
            }
            BookshelfError::Semantic(e) => write!(f, "invalid netlist: {e}"),
            BookshelfError::Structure { file, reason } => write!(f, "malformed {file}: {reason}"),
            BookshelfError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for BookshelfError {}

impl From<NetlistError> for BookshelfError {
    fn from(e: NetlistError) -> Self {
        BookshelfError::Semantic(e)
    }
}

/// The two netlist interchange files of one circuit, as in-memory strings.
#[derive(Debug, Clone, PartialEq)]
pub struct BookshelfPair {
    /// Contents of the `.nodes` file.
    pub nodes: String,
    /// Contents of the `.nets` file.
    pub nets: String,
}

/// One `.pl` line: a cell's placed position.
///
/// Coordinates are integers in layout units — the cell's **left edge** (`x`)
/// and the **bottom** of its row (`y`). Integer serialisation makes the `.pl`
/// writer canonical: `write_pl(parse_pl(text)?) == text` for every file this
/// module writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlEntry {
    /// Cell instance name (matches the `.nodes` file).
    pub name: String,
    /// Left edge of the cell, in layout units.
    pub x: i64,
    /// Bottom of the cell's (lowest) row, in layout units.
    pub y: i64,
    /// `true` when the line carries the `/FIXED` attribute (pads, macros).
    pub fixed: bool,
}

/// One `.scl` `CoreRow` record: the geometry of a single placement row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRow {
    /// Bottom y coordinate of the row, in layout units.
    pub coordinate: i64,
    /// Row height in layout units.
    pub height: i64,
    /// Width of one placement site (1 layout unit per site here).
    pub sitewidth: i64,
    /// Left x coordinate where the row begins.
    pub subrow_origin: i64,
    /// Number of sites in the row (row capacity in layout units).
    pub num_sites: i64,
}

/// Serialises the `.nodes` file to a stream. Cells keep their netlist order,
/// so ids are stable across a dump/reload cycle. Multi-row macros write their
/// real height; fixed cells append `fixed` to the kind/delay annotation.
pub fn write_nodes_to(netlist: &Netlist, out: &mut dyn Write) -> io::Result<()> {
    let stats = netlist.stats();
    writeln!(out, "UCLA nodes 1.0")?;
    writeln!(out, "# circuit {}", netlist.name())?;
    writeln!(
        out,
        "# annotation per node: '# <kind> <switching_delay> [fixed]'"
    )?;
    writeln!(out)?;
    writeln!(out, "NumNodes : {}", netlist.num_cells())?;
    writeln!(out, "NumTerminals : {}", stats.inputs + stats.outputs)?;
    for cell in netlist.cells() {
        let terminal = match cell.kind {
            CellKind::Input | CellKind::Output => " terminal",
            CellKind::Logic | CellKind::FlipFlop | CellKind::Macro => "",
        };
        let fixed = if cell.fixed { " fixed" } else { "" };
        writeln!(
            out,
            "    {} {} {}{} # {} {}{}",
            cell.name,
            cell.width,
            cell.height,
            terminal,
            cell.kind.mnemonic(),
            cell.switching_delay,
            fixed
        )?;
    }
    Ok(())
}

/// Serialises the `.nodes` file ([`write_nodes_to`] into a `String`).
pub fn write_nodes(netlist: &Netlist) -> String {
    into_string(|out| write_nodes_to(netlist, out))
}

/// Serialises the `.nets` file to a stream. Nets keep their netlist order;
/// within each net the driver pin (`O`) comes first, then the sinks (`I`) in
/// netlist order.
pub fn write_nets_to(netlist: &Netlist, out: &mut dyn Write) -> io::Result<()> {
    let stats = netlist.stats();
    writeln!(out, "UCLA nets 1.0")?;
    writeln!(out, "# circuit {}", netlist.name())?;
    writeln!(out, "# annotation per net: '# <switching_prob>'")?;
    writeln!(out)?;
    writeln!(out, "NumNets : {}", netlist.num_nets())?;
    writeln!(out, "NumPins : {}", stats.pins)?;
    for net in netlist.nets() {
        writeln!(
            out,
            "NetDegree : {} {} # {}",
            net.pin_count(),
            net.name,
            net.switching_prob
        )?;
        writeln!(out, "    {} O", netlist.cell(net.driver).name)?;
        for &s in &net.sinks {
            writeln!(out, "    {} I", netlist.cell(s).name)?;
        }
    }
    Ok(())
}

/// Serialises the `.nets` file ([`write_nets_to`] into a `String`).
pub fn write_nets(netlist: &Netlist) -> String {
    into_string(|out| write_nets_to(netlist, out))
}

/// Serialises both netlist interchange files.
pub fn write_bookshelf(netlist: &Netlist) -> BookshelfPair {
    BookshelfPair {
        nodes: write_nodes(netlist),
        nets: write_nets(netlist),
    }
}

/// Serialises a `.pl` placement file to a stream.
pub fn write_pl_to(entries: &[PlEntry], out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "UCLA pl 1.0")?;
    writeln!(out, "# one line per cell: '<name> <x> <y> : N [/FIXED]'")?;
    writeln!(out)?;
    for e in entries {
        let fixed = if e.fixed { " /FIXED" } else { "" };
        writeln!(out, "{} {} {} : N{}", e.name, e.x, e.y, fixed)?;
    }
    Ok(())
}

/// Serialises a `.pl` placement file.
///
/// Round-trips exactly — and, because coordinates are integers, the *text*
/// round-trips byte-identically too:
///
/// ```
/// use vlsi_netlist::bookshelf::{parse_pl, write_pl, PlEntry};
///
/// let cells = vec![
///     PlEntry { name: "g0".into(), x: 0, y: 8, fixed: false },
///     PlEntry { name: "mb0".into(), x: 64, y: 16, fixed: true },
/// ];
/// let text = write_pl(&cells);
/// assert!(text.contains("mb0 64 16 : N /FIXED\n"));
///
/// let parsed = parse_pl(&text).unwrap();
/// assert_eq!(parsed, cells);
/// assert_eq!(write_pl(&parsed), text); // byte-identical round-trip
/// ```
pub fn write_pl(entries: &[PlEntry]) -> String {
    into_string(|out| write_pl_to(entries, out))
}

/// Serialises a `.scl` row-geometry file to a stream.
pub fn write_scl_to(rows: &[CoreRow], out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "UCLA scl 1.0")?;
    writeln!(out)?;
    writeln!(out, "NumRows : {}", rows.len())?;
    writeln!(out)?;
    for r in rows {
        writeln!(out, "CoreRow Horizontal")?;
        writeln!(out, "    Coordinate : {}", r.coordinate)?;
        writeln!(out, "    Height : {}", r.height)?;
        writeln!(out, "    Sitewidth : {}", r.sitewidth)?;
        writeln!(
            out,
            "    SubrowOrigin : {}  NumSites : {}",
            r.subrow_origin, r.num_sites
        )?;
        writeln!(out, "End")?;
    }
    Ok(())
}

/// Serialises a `.scl` row-geometry file.
///
/// ```
/// use vlsi_netlist::bookshelf::{parse_scl, write_scl, CoreRow};
///
/// let rows: Vec<CoreRow> = (0..4)
///     .map(|r| CoreRow {
///         coordinate: r * 8,
///         height: 8,
///         sitewidth: 1,
///         subrow_origin: 0,
///         num_sites: 640,
///     })
///     .collect();
/// let text = write_scl(&rows);
///
/// let parsed = parse_scl(&text).unwrap();
/// assert_eq!(parsed, rows);
/// assert_eq!(write_scl(&parsed), text); // byte-identical round-trip
/// ```
pub fn write_scl(rows: &[CoreRow]) -> String {
    into_string(|out| write_scl_to(rows, out))
}

/// Runs an infallible-in-practice stream writer into a `String`.
fn into_string(f: impl FnOnce(&mut dyn Write) -> io::Result<()>) -> String {
    let mut buf = Vec::new();
    f(&mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("writers emit UTF-8")
}

/// Splits a raw line into its code part and its `#` annotation (both
/// trimmed); a missing annotation yields an empty string.
fn split_annotation(raw: &str) -> (&str, &str) {
    match raw.split_once('#') {
        Some((code, note)) => (code.trim(), note.trim()),
        None => (raw.trim(), ""),
    }
}

/// Parses a `Key : value` count header; returns `None` if the line is not a
/// header for `key`.
fn parse_count(code: &str, key: &str) -> Option<Result<usize, String>> {
    let rest = code.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix(':')?.trim();
    Some(
        rest.parse::<usize>()
            .map_err(|_| format!("invalid {key} count `{rest}`")),
    )
}

/// Adapts a `&str` to the line-iterator shape shared with the streaming
/// parsers.
fn str_lines(text: &str) -> impl Iterator<Item = Result<String, BookshelfError>> + '_ {
    text.lines().map(|l| Ok(l.to_string()))
}

/// Adapts a [`BufRead`] to the shared line-iterator shape.
fn io_lines<R: BufRead>(reader: R) -> impl Iterator<Item = Result<String, BookshelfError>> {
    reader
        .lines()
        .map(|r| r.map_err(|e| BookshelfError::Io(e.to_string())))
}

/// Parses a circuit from the two interchange files. The inverse of
/// [`write_bookshelf`]: a write/parse round-trip reproduces the cells and
/// nets (names, kinds, widths, heights, delays, fixed flags, drivers, sinks,
/// switching probabilities) exactly.
pub fn parse_bookshelf(nodes: &str, nets: &str) -> Result<Netlist, BookshelfError> {
    assemble(parse_nodes(nodes)?, str_lines(nets))
}

/// Streaming variant of [`parse_bookshelf`] over buffered readers.
pub fn parse_bookshelf_from(
    nodes: impl BufRead,
    nets: impl BufRead,
) -> Result<Netlist, BookshelfError> {
    assemble(parse_nodes_lines(io_lines(nodes))?, io_lines(nets))
}

/// Builds the netlist from parsed nodes plus the `.nets` line stream.
fn assemble(
    (name, cells): (String, Vec<Cell>),
    net_lines: impl Iterator<Item = Result<String, BookshelfError>>,
) -> Result<Netlist, BookshelfError> {
    let mut builder = NetlistBuilder::new(name);
    let mut cell_ids: HashMap<String, crate::CellId> = HashMap::with_capacity(cells.len());
    for cell in cells {
        let cell_name = cell.name.clone();
        let id = builder.add_cell(cell);
        cell_ids.insert(cell_name, id);
    }
    parse_nets_lines(net_lines, &mut builder, &cell_ids)?;
    Ok(builder.build()?)
}

/// Parses the `.nodes` file into the circuit name and the cell list.
fn parse_nodes(text: &str) -> Result<(String, Vec<Cell>), BookshelfError> {
    parse_nodes_lines(str_lines(text))
}

fn parse_nodes_lines(
    lines: impl Iterator<Item = Result<String, BookshelfError>>,
) -> Result<(String, Vec<Cell>), BookshelfError> {
    let syntax = |line: usize, reason: String| BookshelfError::Syntax {
        file: BookshelfFile::Nodes,
        line,
        reason,
    };
    let structure = |reason: String| BookshelfError::Structure {
        file: BookshelfFile::Nodes,
        reason,
    };

    let mut circuit: Option<String> = None;
    let mut saw_header = false;
    let mut declared_nodes: Option<usize> = None;
    let mut declared_terminals: Option<usize> = None;
    let mut cells: Vec<Cell> = Vec::new();
    let mut terminals = 0usize;

    for (idx, raw) in lines.enumerate() {
        let raw = raw?;
        let lineno = idx + 1;
        let (code, note) = split_annotation(&raw);
        if circuit.is_none() {
            if let Some(rest) = note.strip_prefix("circuit ") {
                circuit = Some(rest.trim().to_string());
            }
        }
        if code.is_empty() {
            continue;
        }
        if !saw_header {
            if code.starts_with("UCLA nodes") {
                saw_header = true;
                continue;
            }
            return Err(syntax(lineno, "expected `UCLA nodes` header".into()));
        }
        if let Some(count) = parse_count(code, "NumNodes") {
            declared_nodes = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }
        if let Some(count) = parse_count(code, "NumTerminals") {
            declared_terminals = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }

        // Node line: `<name> <width> <height> [terminal]`, annotated with
        // `<kind> <delay> [fixed]`. Un-annotated lines (files written by
        // other tools) fall back to terminal→input / movable→logic with the
        // default logic delay.
        let mut tokens = code.split_whitespace();
        let node_name = tokens
            .next()
            .ok_or_else(|| syntax(lineno, "missing node name".into()))?;
        let width: u32 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| syntax(lineno, "missing or invalid node width".into()))?;
        let height: u32 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .filter(|&h| h >= 1)
            .ok_or_else(|| syntax(lineno, "missing or invalid node height".into()))?;
        let is_terminal = match tokens.next() {
            None => false,
            Some("terminal") => true,
            Some(other) => {
                return Err(syntax(lineno, format!("unexpected token `{other}`")));
            }
        };

        let mut note_tokens = note.split_whitespace();
        let (kind, delay, fixed) = match note_tokens.next() {
            Some(mnemonic) => {
                let kind = CellKind::from_mnemonic(mnemonic).ok_or_else(|| {
                    syntax(lineno, format!("unknown cell kind annotation `{mnemonic}`"))
                })?;
                let delay: f64 = note_tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax(lineno, "missing or invalid delay annotation".into()))?;
                let fixed = match note_tokens.next() {
                    None => false,
                    Some("fixed") => true,
                    Some(other) => {
                        return Err(syntax(
                            lineno,
                            format!("unexpected annotation token `{other}`"),
                        ));
                    }
                };
                (kind, delay, fixed)
            }
            None if is_terminal => (CellKind::Input, 0.0, false),
            None => (CellKind::Logic, 0.1, false),
        };
        let kind_is_terminal = matches!(kind, CellKind::Input | CellKind::Output);
        if kind_is_terminal != is_terminal {
            return Err(syntax(
                lineno,
                format!(
                    "terminal flag disagrees with kind annotation `{}`",
                    kind.mnemonic()
                ),
            ));
        }
        if is_terminal {
            terminals += 1;
        }
        let mut cell = Cell::new(node_name, kind, width, delay);
        cell.height = height;
        cell.fixed = fixed;
        cells.push(cell);
    }

    if !saw_header {
        return Err(structure("missing `UCLA nodes` header".into()));
    }
    if let Some(n) = declared_nodes {
        if n != cells.len() {
            return Err(structure(format!(
                "NumNodes declares {n} nodes but {} were listed",
                cells.len()
            )));
        }
    }
    if let Some(t) = declared_terminals {
        if t != terminals {
            return Err(structure(format!(
                "NumTerminals declares {t} terminals but {terminals} were listed"
            )));
        }
    }
    let name = circuit.unwrap_or_else(|| "bookshelf".to_string());
    Ok((name, cells))
}

/// Parses the `.nets` file, adding every net to `builder`.
fn parse_nets_lines(
    lines: impl Iterator<Item = Result<String, BookshelfError>>,
    builder: &mut NetlistBuilder,
    cell_ids: &HashMap<String, crate::CellId>,
) -> Result<(), BookshelfError> {
    let syntax = |line: usize, reason: String| BookshelfError::Syntax {
        file: BookshelfFile::Nets,
        line,
        reason,
    };
    let structure = |reason: String| BookshelfError::Structure {
        file: BookshelfFile::Nets,
        reason,
    };

    let mut saw_header = false;
    let mut declared_nets: Option<usize> = None;
    let mut declared_pins: Option<usize> = None;
    let mut pins = 0usize;

    // In-flight net group: (line of the NetDegree header, name, declared
    // degree, switching prob, driver, sinks).
    struct Group {
        header_line: usize,
        name: String,
        degree: usize,
        sprob: f64,
        driver: Option<crate::CellId>,
        sinks: Vec<crate::CellId>,
    }
    let mut group: Option<Group> = None;
    let mut nets = 0usize;

    let finish_group =
        |g: Group, builder: &mut NetlistBuilder, nets: &mut usize| -> Result<(), BookshelfError> {
            let total = g.sinks.len() + usize::from(g.driver.is_some());
            if total != g.degree {
                return Err(BookshelfError::Syntax {
                    file: BookshelfFile::Nets,
                    line: g.header_line,
                    reason: format!(
                        "net `{}` declares degree {} but has {} pins",
                        g.name, g.degree, total
                    ),
                });
            }
            let driver = g.driver.ok_or(BookshelfError::Syntax {
                file: BookshelfFile::Nets,
                line: g.header_line,
                reason: format!("net `{}` has no output (`O`) pin", g.name),
            })?;
            builder.add_net(Net::new(g.name, driver, g.sinks, g.sprob));
            *nets += 1;
            Ok(())
        };

    for (idx, raw) in lines.enumerate() {
        let raw = raw?;
        let lineno = idx + 1;
        let (code, note) = split_annotation(&raw);
        if code.is_empty() {
            continue;
        }
        if !saw_header {
            if code.starts_with("UCLA nets") {
                saw_header = true;
                continue;
            }
            return Err(syntax(lineno, "expected `UCLA nets` header".into()));
        }
        if let Some(count) = parse_count(code, "NumNets") {
            declared_nets = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }
        if let Some(count) = parse_count(code, "NumPins") {
            declared_pins = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }
        if let Some(rest) = code.strip_prefix("NetDegree") {
            if let Some(g) = group.take() {
                finish_group(g, builder, &mut nets)?;
            }
            let rest = rest
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| syntax(lineno, "expected `NetDegree : <d> <name>`".into()))?
                .trim();
            let mut tokens = rest.split_whitespace();
            let degree: usize = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| syntax(lineno, "missing or invalid net degree".into()))?;
            let net_name = tokens
                .next()
                .ok_or_else(|| syntax(lineno, "missing net name".into()))?;
            let sprob: f64 = if note.is_empty() {
                0.5
            } else {
                note.parse().map_err(|_| {
                    syntax(
                        lineno,
                        format!("invalid switching-prob annotation `{note}`"),
                    )
                })?
            };
            group = Some(Group {
                header_line: lineno,
                name: net_name.to_string(),
                degree,
                sprob,
                driver: None,
                sinks: Vec::new(),
            });
            continue;
        }

        // Pin line: `<cellname> <I|O>`.
        let g = group
            .as_mut()
            .ok_or_else(|| syntax(lineno, "pin line before any `NetDegree` header".into()))?;
        let mut tokens = code.split_whitespace();
        let cell_name = tokens
            .next()
            .ok_or_else(|| syntax(lineno, "missing pin cell name".into()))?;
        let id = *cell_ids
            .get(cell_name)
            .ok_or_else(|| syntax(lineno, format!("unknown cell `{cell_name}`")))?;
        match tokens.next() {
            Some("O") => {
                if g.driver.replace(id).is_some() {
                    return Err(syntax(
                        lineno,
                        format!("net `{}` has more than one output (`O`) pin", g.name),
                    ));
                }
            }
            Some("I") => g.sinks.push(id),
            other => {
                return Err(syntax(
                    lineno,
                    format!(
                        "expected pin direction `I` or `O`, got `{}`",
                        other.unwrap_or("")
                    ),
                ));
            }
        }
        pins += 1;
    }

    if !saw_header {
        return Err(structure("missing `UCLA nets` header".into()));
    }
    if let Some(g) = group.take() {
        finish_group(g, builder, &mut nets)?;
    }
    if let Some(n) = declared_nets {
        if n != nets {
            return Err(structure(format!(
                "NumNets declares {n} nets but {nets} were listed"
            )));
        }
    }
    if let Some(p) = declared_pins {
        if p != pins {
            return Err(structure(format!(
                "NumPins declares {p} pins but {pins} were listed"
            )));
        }
    }
    Ok(())
}

/// Parses a `.pl` placement file. The inverse of [`write_pl`]; see there for
/// a round-trip example. Orientation tokens other than `N` are accepted and
/// discarded (the workspace's layouts are unrotated).
pub fn parse_pl(text: &str) -> Result<Vec<PlEntry>, BookshelfError> {
    parse_pl_lines(str_lines(text))
}

/// Streaming variant of [`parse_pl`] over a buffered reader.
pub fn parse_pl_from(reader: impl BufRead) -> Result<Vec<PlEntry>, BookshelfError> {
    parse_pl_lines(io_lines(reader))
}

fn parse_pl_lines(
    lines: impl Iterator<Item = Result<String, BookshelfError>>,
) -> Result<Vec<PlEntry>, BookshelfError> {
    let syntax = |line: usize, reason: String| BookshelfError::Syntax {
        file: BookshelfFile::Pl,
        line,
        reason,
    };

    let mut saw_header = false;
    let mut entries = Vec::new();
    for (idx, raw) in lines.enumerate() {
        let raw = raw?;
        let lineno = idx + 1;
        let (code, _note) = split_annotation(&raw);
        if code.is_empty() {
            continue;
        }
        if !saw_header {
            if code.starts_with("UCLA pl") {
                saw_header = true;
                continue;
            }
            return Err(syntax(lineno, "expected `UCLA pl` header".into()));
        }
        let mut tokens = code.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| syntax(lineno, "missing cell name".into()))?;
        let x: i64 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| syntax(lineno, "missing or invalid x coordinate".into()))?;
        let y: i64 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| syntax(lineno, "missing or invalid y coordinate".into()))?;
        match tokens.next() {
            Some(":") => {}
            other => {
                return Err(syntax(
                    lineno,
                    format!(
                        "expected `:` before the orientation, got `{}`",
                        other.unwrap_or("")
                    ),
                ));
            }
        }
        tokens
            .next()
            .ok_or_else(|| syntax(lineno, "missing orientation".into()))?;
        let fixed = match tokens.next() {
            None => false,
            Some("/FIXED") => true,
            Some(other) => {
                return Err(syntax(lineno, format!("unexpected token `{other}`")));
            }
        };
        if let Some(extra) = tokens.next() {
            return Err(syntax(lineno, format!("unexpected token `{extra}`")));
        }
        entries.push(PlEntry {
            name: name.to_string(),
            x,
            y,
            fixed,
        });
    }

    if !saw_header {
        return Err(BookshelfError::Structure {
            file: BookshelfFile::Pl,
            reason: "missing `UCLA pl` header".into(),
        });
    }
    Ok(entries)
}

/// Parses a `.scl` row-geometry file. The inverse of [`write_scl`]; see
/// there for a round-trip example. `Sitewidth` and `SubrowOrigin` default to
/// 1 and 0 when a record omits them.
pub fn parse_scl(text: &str) -> Result<Vec<CoreRow>, BookshelfError> {
    parse_scl_lines(str_lines(text))
}

/// Streaming variant of [`parse_scl`] over a buffered reader.
pub fn parse_scl_from(reader: impl BufRead) -> Result<Vec<CoreRow>, BookshelfError> {
    parse_scl_lines(io_lines(reader))
}

fn parse_scl_lines(
    lines: impl Iterator<Item = Result<String, BookshelfError>>,
) -> Result<Vec<CoreRow>, BookshelfError> {
    let syntax = |line: usize, reason: String| BookshelfError::Syntax {
        file: BookshelfFile::Scl,
        line,
        reason,
    };
    let structure = |reason: String| BookshelfError::Structure {
        file: BookshelfFile::Scl,
        reason,
    };

    // In-flight `CoreRow … End` record.
    #[derive(Default)]
    struct Partial {
        header_line: usize,
        coordinate: Option<i64>,
        height: Option<i64>,
        sitewidth: Option<i64>,
        subrow_origin: Option<i64>,
        num_sites: Option<i64>,
    }

    let mut saw_header = false;
    let mut declared_rows: Option<usize> = None;
    let mut rows: Vec<CoreRow> = Vec::new();
    let mut cur: Option<Partial> = None;

    for (idx, raw) in lines.enumerate() {
        let raw = raw?;
        let lineno = idx + 1;
        let (code, _note) = split_annotation(&raw);
        if code.is_empty() {
            continue;
        }
        if !saw_header {
            if code.starts_with("UCLA scl") {
                saw_header = true;
                continue;
            }
            return Err(syntax(lineno, "expected `UCLA scl` header".into()));
        }
        if cur.is_none() {
            if let Some(count) = parse_count(code, "NumRows") {
                declared_rows = Some(count.map_err(|r| syntax(lineno, r))?);
                continue;
            }
            if code.split_whitespace().next() == Some("CoreRow") {
                cur = Some(Partial {
                    header_line: lineno,
                    ..Partial::default()
                });
                continue;
            }
            return Err(syntax(
                lineno,
                format!("expected `CoreRow` record, got `{code}`"),
            ));
        }
        if code == "End" {
            let p = cur.take().expect("checked above");
            let missing = |field: &str| BookshelfError::Syntax {
                file: BookshelfFile::Scl,
                line: p.header_line,
                reason: format!("CoreRow record is missing `{field}`"),
            };
            rows.push(CoreRow {
                coordinate: p.coordinate.ok_or_else(|| missing("Coordinate"))?,
                height: p.height.ok_or_else(|| missing("Height"))?,
                sitewidth: p.sitewidth.unwrap_or(1),
                subrow_origin: p.subrow_origin.unwrap_or(0),
                num_sites: p.num_sites.ok_or_else(|| missing("NumSites"))?,
            });
            continue;
        }
        // One or more `Key : value` pairs on the line (the canonical writer
        // puts `SubrowOrigin` and `NumSites` on a shared line).
        let p = cur.as_mut().expect("checked above");
        let mut tokens = code.split_whitespace();
        while let Some(key) = tokens.next() {
            if tokens.next() != Some(":") {
                return Err(syntax(lineno, format!("expected `:` after `{key}`")));
            }
            let value: i64 = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| syntax(lineno, format!("missing or invalid value for `{key}`")))?;
            let slot = match key {
                "Coordinate" => &mut p.coordinate,
                "Height" => &mut p.height,
                "Sitewidth" => &mut p.sitewidth,
                "SubrowOrigin" => &mut p.subrow_origin,
                "NumSites" => &mut p.num_sites,
                other => {
                    return Err(syntax(lineno, format!("unknown CoreRow field `{other}`")));
                }
            };
            if slot.replace(value).is_some() {
                return Err(syntax(lineno, format!("duplicate CoreRow field `{key}`")));
            }
        }
    }

    if !saw_header {
        return Err(structure("missing `UCLA scl` header".into()));
    }
    if cur.is_some() {
        return Err(structure(
            "unterminated CoreRow record (missing `End`)".into(),
        ));
    }
    if let Some(n) = declared_rows {
        if n != rows.len() {
            return Err(structure(format!(
                "NumRows declares {n} rows but {} were listed",
                rows.len()
            )));
        }
    }
    Ok(rows)
}

/// Paths of the two netlist interchange files for a given stem:
/// `<stem>.nodes` and `<stem>.nets`.
pub fn bookshelf_paths(stem: &Path) -> (PathBuf, PathBuf) {
    (stem.with_extension("nodes"), stem.with_extension("nets"))
}

/// Paths of the four layout files for a given stem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutPaths {
    /// `<stem>.nodes`
    pub nodes: PathBuf,
    /// `<stem>.nets`
    pub nets: PathBuf,
    /// `<stem>.pl`
    pub pl: PathBuf,
    /// `<stem>.scl`
    pub scl: PathBuf,
}

/// Paths of the full layout bundle for a given stem: `<stem>.nodes`,
/// `<stem>.nets`, `<stem>.pl` and `<stem>.scl`.
pub fn layout_paths(stem: &Path) -> LayoutPaths {
    LayoutPaths {
        nodes: stem.with_extension("nodes"),
        nets: stem.with_extension("nets"),
        pl: stem.with_extension("pl"),
        scl: stem.with_extension("scl"),
    }
}

/// Creates `path` and streams `f` into it through a [`io::BufWriter`].
fn write_file(
    path: &Path,
    f: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> Result<(), BookshelfError> {
    let io_err = |e: io::Error| BookshelfError::Io(format!("{}: {e}", path.display()));
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = io::BufWriter::new(file);
    f(&mut w).and_then(|()| w.flush()).map_err(io_err)
}

/// Opens `path` as a buffered reader.
fn open_reader(path: &Path) -> Result<io::BufReader<std::fs::File>, BookshelfError> {
    std::fs::File::open(path)
        .map(io::BufReader::new)
        .map_err(|e| BookshelfError::Io(format!("{}: {e}", path.display())))
}

/// Dumps a circuit to `<stem>.nodes` / `<stem>.nets` on disk (streamed, so
/// 100k+-cell circuits never materialise the file text in memory).
pub fn save_bookshelf(netlist: &Netlist, stem: &Path) -> Result<(), BookshelfError> {
    let (nodes_path, nets_path) = bookshelf_paths(stem);
    write_file(&nodes_path, |w| write_nodes_to(netlist, w))?;
    write_file(&nets_path, |w| write_nets_to(netlist, w))
}

/// Reloads a circuit previously dumped with [`save_bookshelf`] (streamed).
pub fn load_bookshelf(stem: &Path) -> Result<Netlist, BookshelfError> {
    let (nodes_path, nets_path) = bookshelf_paths(stem);
    parse_bookshelf_from(open_reader(&nodes_path)?, open_reader(&nets_path)?)
}

/// Writes a `.pl` file to disk (streamed).
pub fn save_pl(entries: &[PlEntry], path: &Path) -> Result<(), BookshelfError> {
    write_file(path, |w| write_pl_to(entries, w))
}

/// Reads a `.pl` file from disk (streamed).
pub fn load_pl(path: &Path) -> Result<Vec<PlEntry>, BookshelfError> {
    parse_pl_from(open_reader(path)?)
}

/// Writes an `.scl` file to disk (streamed).
pub fn save_scl(rows: &[CoreRow], path: &Path) -> Result<(), BookshelfError> {
    write_file(path, |w| write_scl_to(rows, w))
}

/// Reads an `.scl` file from disk (streamed).
pub fn load_scl(path: &Path) -> Result<Vec<CoreRow>, BookshelfError> {
    parse_scl_from(open_reader(path)?)
}

/// `true` when two netlists are identical circuits: same name and bitwise
/// equal cell and net tables (including the mixed-size `height`/`fixed`
/// attributes). The derived CSR adjacency is a pure function of the nets, so
/// it is covered by the comparison.
pub fn netlists_identical(a: &Netlist, b: &Netlist) -> bool {
    a.name() == b.name() && a.cells() == b.cells() && a.nets() == b.nets()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::{mixed_circuit, paper_circuit, MixedCircuit, PaperCircuit};
    use crate::generator::{CircuitGenerator, GeneratorConfig, MixedSizeSpec};

    fn sample() -> Netlist {
        CircuitGenerator::new(GeneratorConfig::sized("bookshelf_test", 140, 9)).generate()
    }

    fn mixed_sample() -> Netlist {
        let cfg = GeneratorConfig::sized("bookshelf_mixed", 180, 9).with_mixed(MixedSizeSpec {
            num_macros: 3,
            macro_height: 3,
            pad_ring: true,
        });
        CircuitGenerator::new(cfg).generate()
    }

    #[test]
    fn roundtrip_is_identity_on_generated_circuits() {
        let original = sample();
        let pair = write_bookshelf(&original);
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert!(netlists_identical(&original, &parsed));
    }

    #[test]
    fn roundtrip_is_identity_on_a_paper_circuit() {
        let original = paper_circuit(PaperCircuit::S1238);
        let pair = write_bookshelf(&original);
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert!(netlists_identical(&original, &parsed));
    }

    #[test]
    fn roundtrip_preserves_heights_and_fixed_flags() {
        let original = mixed_sample();
        assert!(original.has_fixed_cells());
        let pair = write_bookshelf(&original);
        // Macro lines carry the real height and the fixed annotation.
        assert!(
            pair.nodes.contains(" 3 # macro 0.2 fixed\n"),
            "{}",
            pair.nodes
        );
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert!(netlists_identical(&original, &parsed));
        // And the text itself is a fixpoint of write ∘ parse.
        assert_eq!(write_bookshelf(&parsed), pair);
    }

    #[test]
    fn roundtrip_is_identity_on_a_mixed_suite_circuit() {
        let original = mixed_circuit(MixedCircuit::Mix600);
        let pair = write_bookshelf(&original);
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert!(netlists_identical(&original, &parsed));
    }

    #[test]
    fn nodes_file_declares_consistent_counts() {
        let nl = sample();
        let nodes = write_nodes(&nl);
        let stats = nl.stats();
        assert!(nodes.starts_with("UCLA nodes 1.0\n"));
        assert!(nodes.contains(&format!("NumNodes : {}", nl.num_cells())));
        assert!(nodes.contains(&format!("NumTerminals : {}", stats.inputs + stats.outputs)));
        assert_eq!(
            nodes.matches(" terminal ").count(),
            stats.inputs + stats.outputs
        );
    }

    #[test]
    fn nets_file_declares_consistent_counts() {
        let nl = sample();
        let nets = write_nets(&nl);
        let stats = nl.stats();
        assert!(nets.starts_with("UCLA nets 1.0\n"));
        assert!(nets.contains(&format!("NumNets : {}", nl.num_nets())));
        assert!(nets.contains(&format!("NumPins : {}", stats.pins)));
        assert_eq!(nets.matches("NetDegree :").count(), nl.num_nets());
    }

    #[test]
    fn save_and_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("sime_bookshelf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("sample");
        let original = mixed_sample();
        save_bookshelf(&original, &stem).unwrap();
        let reloaded = load_bookshelf(&stem).unwrap();
        assert!(netlists_identical(&original, &reloaded));
        let (nodes_path, nets_path) = bookshelf_paths(&stem);
        std::fs::remove_file(nodes_path).unwrap();
        std::fs::remove_file(nets_path).unwrap();
    }

    #[test]
    fn pl_roundtrips_in_memory_and_on_disk() {
        let entries = vec![
            PlEntry {
                name: "g0".into(),
                x: 0,
                y: 8,
                fixed: false,
            },
            PlEntry {
                name: "pi0".into(),
                x: -12,
                y: 0,
                fixed: true,
            },
            PlEntry {
                name: "mb0".into(),
                x: 64,
                y: 16,
                fixed: true,
            },
        ];
        let text = write_pl(&entries);
        assert_eq!(parse_pl(&text).unwrap(), entries);
        assert_eq!(write_pl(&parse_pl(&text).unwrap()), text);

        let dir = std::env::temp_dir().join("sime_bookshelf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pl");
        save_pl(&entries, &path).unwrap();
        assert_eq!(load_pl(&path).unwrap(), entries);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pl_parse_errors_carry_file_and_line() {
        let missing_colon = "UCLA pl 1.0\ng0 0 8 N\n";
        let err = parse_pl(missing_colon).unwrap_err();
        assert!(
            matches!(
                err,
                BookshelfError::Syntax {
                    file: BookshelfFile::Pl,
                    line: 2,
                    ..
                }
            ),
            "{err}"
        );
        let trailing = "UCLA pl 1.0\ng0 0 8 : N /FIXED junk\n";
        assert!(parse_pl(trailing).is_err());
        let headerless = "g0 0 8 : N\n";
        assert!(parse_pl(headerless).is_err());
        // Comments and blank lines are skipped; other orientations accepted.
        let tolerant = "UCLA pl 1.0\n# comment\n\nmb0 4 0 : FS /FIXED\n";
        assert_eq!(
            parse_pl(tolerant).unwrap(),
            vec![PlEntry {
                name: "mb0".into(),
                x: 4,
                y: 0,
                fixed: true
            }]
        );
    }

    #[test]
    fn scl_roundtrips_in_memory_and_on_disk() {
        let rows: Vec<CoreRow> = (0..5)
            .map(|r| CoreRow {
                coordinate: r * 8,
                height: 8,
                sitewidth: 1,
                subrow_origin: 0,
                num_sites: 480,
            })
            .collect();
        let text = write_scl(&rows);
        assert_eq!(parse_scl(&text).unwrap(), rows);
        assert_eq!(write_scl(&parse_scl(&text).unwrap()), text);

        let dir = std::env::temp_dir().join("sime_bookshelf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.scl");
        save_scl(&rows, &path).unwrap();
        assert_eq!(load_scl(&path).unwrap(), rows);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn scl_parser_enforces_structure() {
        // Row count mismatch.
        let bad_count = "UCLA scl 1.0\nNumRows : 2\nCoreRow Horizontal\n\
                         Coordinate : 0\nHeight : 8\nNumSites : 10\nEnd\n";
        assert!(matches!(
            parse_scl(bad_count).unwrap_err(),
            BookshelfError::Structure {
                file: BookshelfFile::Scl,
                ..
            }
        ));
        // Unterminated record.
        let unterminated = "UCLA scl 1.0\nCoreRow Horizontal\nCoordinate : 0\n";
        assert!(matches!(
            parse_scl(unterminated).unwrap_err(),
            BookshelfError::Structure {
                file: BookshelfFile::Scl,
                ..
            }
        ));
        // Missing mandatory field points at the record header line.
        let missing = "UCLA scl 1.0\nCoreRow Horizontal\nCoordinate : 0\nHeight : 8\nEnd\n";
        assert!(matches!(
            parse_scl(missing).unwrap_err(),
            BookshelfError::Syntax {
                file: BookshelfFile::Scl,
                line: 2,
                ..
            }
        ));
        // Duplicate field.
        let dup = "UCLA scl 1.0\nCoreRow Horizontal\nCoordinate : 0\nCoordinate : 8\n";
        assert!(parse_scl(dup).is_err());
        // Defaults apply for Sitewidth / SubrowOrigin.
        let minimal = "UCLA scl 1.0\nCoreRow Horizontal\n\
                       Coordinate : 16\nHeight : 8\nNumSites : 64\nEnd\n";
        assert_eq!(
            parse_scl(minimal).unwrap(),
            vec![CoreRow {
                coordinate: 16,
                height: 8,
                sitewidth: 1,
                subrow_origin: 0,
                num_sites: 64
            }]
        );
    }

    #[test]
    fn layout_paths_cover_all_four_files() {
        let p = layout_paths(Path::new("/tmp/mix600"));
        assert_eq!(p.nodes, Path::new("/tmp/mix600.nodes"));
        assert_eq!(p.nets, Path::new("/tmp/mix600.nets"));
        assert_eq!(p.pl, Path::new("/tmp/mix600.pl"));
        assert_eq!(p.scl, Path::new("/tmp/mix600.scl"));
    }

    #[test]
    fn syntax_errors_carry_file_and_line() {
        // Line 4 of the nodes file has a bogus width.
        let nodes = "UCLA nodes 1.0\n# circuit x\nNumNodes : 1\n    a xx 1 terminal # in 0\n";
        let err = parse_bookshelf(nodes, "UCLA nets 1.0\nNumNets : 0\n").unwrap_err();
        assert_eq!(
            err,
            BookshelfError::Syntax {
                file: BookshelfFile::Nodes,
                line: 4,
                reason: "missing or invalid node width".into()
            }
        );

        // Line 4 of the nets file references an unknown cell.
        let nodes =
            "UCLA nodes 1.0\n# circuit x\n    a 1 1 terminal # in 0\n    b 1 1 # logic 0.1\n";
        let nets = "UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n0 # 0.5\n    bogus O\n    b I\n";
        let err = parse_bookshelf(nodes, nets).unwrap_err();
        assert!(
            matches!(
                err,
                BookshelfError::Syntax {
                    file: BookshelfFile::Nets,
                    line: 4,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn bad_heights_and_annotations_are_rejected() {
        let zero_height = "UCLA nodes 1.0\n    m 4 0 # macro 0.2 fixed\n";
        assert!(parse_nodes(zero_height).is_err());
        let bad_extra = "UCLA nodes 1.0\n    m 4 3 # macro 0.2 movable\n";
        let err = parse_nodes(bad_extra).unwrap_err();
        assert!(err.to_string().contains("unexpected annotation"), "{err}");
    }

    #[test]
    fn missing_driver_and_degree_mismatch_are_rejected() {
        let nodes = "UCLA nodes 1.0\n# circuit x\n    a 1 1 # logic 0.1\n    b 1 1 # logic 0.1\n";
        let all_inputs = "UCLA nets 1.0\nNetDegree : 2 n0 # 0.5\n    a I\n    b I\n";
        let err = parse_bookshelf(nodes, all_inputs).unwrap_err();
        assert!(err.to_string().contains("no output"), "{err}");

        let wrong_degree = "UCLA nets 1.0\nNetDegree : 3 n0 # 0.5\n    a O\n    b I\n";
        let err = parse_bookshelf(nodes, wrong_degree).unwrap_err();
        assert!(err.to_string().contains("declares degree 3"), "{err}");
    }

    #[test]
    fn count_mismatches_are_structure_errors() {
        let nodes = "UCLA nodes 1.0\nNumNodes : 5\n    a 1 1 # logic 0.1\n";
        let err = parse_nodes(nodes).unwrap_err();
        assert!(
            matches!(
                err,
                BookshelfError::Structure {
                    file: BookshelfFile::Nodes,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn plain_ucla_files_without_annotations_still_parse() {
        // Files written by other tools carry no kind/delay/sprob
        // annotations; the parser falls back to sensible defaults.
        let nodes = "UCLA nodes 1.0\nNumNodes : 3\n    p 2 1 terminal\n    g 4 1\n    q 3 1\n";
        let nets = "UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n\n    p O\n    g I\n";
        let nl = parse_bookshelf(nodes, nets).unwrap();
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.cell(nl.cell_by_name("p").unwrap()).kind, CellKind::Input);
        assert_eq!(nl.cell(nl.cell_by_name("g").unwrap()).kind, CellKind::Logic);
        assert_eq!(nl.net(nl.net_by_name("n").unwrap()).switching_prob, 0.5);
    }

    #[test]
    fn terminal_flag_must_agree_with_annotation() {
        let nodes = "UCLA nodes 1.0\n    a 1 1 terminal # logic 0.1\n";
        let err = parse_nodes(nodes).unwrap_err();
        assert!(err.to_string().contains("terminal flag disagrees"), "{err}");
    }
}
