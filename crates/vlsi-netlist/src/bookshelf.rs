//! Bookshelf-style on-disk interchange (`.nodes` / `.nets`).
//!
//! The Bookshelf placement format (UCLA, used by the ISPD placement contests
//! and by benchmark surfaces such as BBOPlace-Bench) splits a circuit across
//! one file per concern; this module implements the two files the netlist
//! layer needs so that suite circuits can be dumped, shipped and reloaded
//! instead of regenerated:
//!
//! * **`.nodes`** — one line per cell: `name width height [terminal]`, with
//!   `NumNodes` / `NumTerminals` counts up front. I/O pads are `terminal`.
//! * **`.nets`** — one `NetDegree : <d> <name>` group per net followed by
//!   `d` pin lines `cellname <I|O>`; the driver carries the `O` direction,
//!   sinks carry `I`.
//!
//! The workspace's netlists carry attributes the plain UCLA format has no
//! field for (cell kind, switching delay, net switching probability), so the
//! writer emits them as `#` *annotations* — a trailing comment on the line
//! they describe. `#` starts a comment in Bookshelf, so tools that read the
//! plain format see a standard file and skip the annotations, while
//! [`parse_bookshelf`] reads them back for a lossless round-trip:
//!
//! ```text
//! UCLA nodes 1.0
//! # circuit s1196
//! NumNodes : 561
//! NumTerminals : 28
//!     pi0 1 1 terminal # in 0
//!     g14 5 1 # logic 0.0782
//! ```
//!
//! Parse errors carry the offending **file** ([`BookshelfFile::Nodes`] or
//! [`BookshelfFile::Nets`]) and the 1-based line number within it, mirroring
//! the error contract of [`crate::format`].

use crate::{Cell, CellKind, Net, Netlist, NetlistBuilder, NetlistError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Which of the two interchange files an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BookshelfFile {
    /// The `.nodes` file.
    Nodes,
    /// The `.nets` file.
    Nets,
}

impl std::fmt::Display for BookshelfFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BookshelfFile::Nodes => ".nodes",
            BookshelfFile::Nets => ".nets",
        })
    }
}

/// Errors produced by [`parse_bookshelf`] and [`load_bookshelf`].
#[derive(Debug, Clone, PartialEq)]
pub enum BookshelfError {
    /// A line could not be parsed; carries the file, its 1-based line number
    /// and a human-readable reason.
    Syntax {
        /// Which file the line is in.
        file: BookshelfFile,
        /// 1-based line number within that file.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The files were syntactically valid but the assembled circuit is not.
    Semantic(NetlistError),
    /// A file-level problem: missing header, count mismatch, truncated group.
    Structure {
        /// Which file the problem is in.
        file: BookshelfFile,
        /// Human-readable description.
        reason: String,
    },
    /// An I/O error while reading or writing the files on disk.
    Io(String),
}

impl std::fmt::Display for BookshelfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BookshelfError::Syntax { file, line, reason } => {
                write!(f, "{file} line {line}: {reason}")
            }
            BookshelfError::Semantic(e) => write!(f, "invalid netlist: {e}"),
            BookshelfError::Structure { file, reason } => write!(f, "malformed {file}: {reason}"),
            BookshelfError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for BookshelfError {}

impl From<NetlistError> for BookshelfError {
    fn from(e: NetlistError) -> Self {
        BookshelfError::Semantic(e)
    }
}

/// The two interchange files of one circuit, as in-memory strings.
#[derive(Debug, Clone, PartialEq)]
pub struct BookshelfPair {
    /// Contents of the `.nodes` file.
    pub nodes: String,
    /// Contents of the `.nets` file.
    pub nets: String,
}

/// Serialises the `.nodes` file. Cells keep their netlist order, so ids are
/// stable across a dump/reload cycle.
pub fn write_nodes(netlist: &Netlist) -> String {
    let stats = netlist.stats();
    let mut out = String::new();
    out.push_str("UCLA nodes 1.0\n");
    out.push_str(&format!("# circuit {}\n", netlist.name()));
    out.push_str("# annotation per node: '# <kind> <switching_delay>'\n");
    out.push('\n');
    out.push_str(&format!("NumNodes : {}\n", netlist.num_cells()));
    out.push_str(&format!(
        "NumTerminals : {}\n",
        stats.inputs + stats.outputs
    ));
    for cell in netlist.cells() {
        let terminal = match cell.kind {
            CellKind::Input | CellKind::Output => " terminal",
            CellKind::Logic | CellKind::FlipFlop => "",
        };
        out.push_str(&format!(
            "    {} {} 1{} # {} {}\n",
            cell.name,
            cell.width,
            terminal,
            cell.kind.mnemonic(),
            cell.switching_delay
        ));
    }
    out
}

/// Serialises the `.nets` file. Nets keep their netlist order; within each
/// net the driver pin (`O`) comes first, then the sinks (`I`) in netlist
/// order.
pub fn write_nets(netlist: &Netlist) -> String {
    let stats = netlist.stats();
    let mut out = String::new();
    out.push_str("UCLA nets 1.0\n");
    out.push_str(&format!("# circuit {}\n", netlist.name()));
    out.push_str("# annotation per net: '# <switching_prob>'\n");
    out.push('\n');
    out.push_str(&format!("NumNets : {}\n", netlist.num_nets()));
    out.push_str(&format!("NumPins : {}\n", stats.pins));
    for net in netlist.nets() {
        out.push_str(&format!(
            "NetDegree : {} {} # {}\n",
            net.pin_count(),
            net.name,
            net.switching_prob
        ));
        out.push_str(&format!("    {} O\n", netlist.cell(net.driver).name));
        for &s in &net.sinks {
            out.push_str(&format!("    {} I\n", netlist.cell(s).name));
        }
    }
    out
}

/// Serialises both interchange files.
pub fn write_bookshelf(netlist: &Netlist) -> BookshelfPair {
    BookshelfPair {
        nodes: write_nodes(netlist),
        nets: write_nets(netlist),
    }
}

/// Splits a raw line into its code part and its `#` annotation (both
/// trimmed); a missing annotation yields an empty string.
fn split_annotation(raw: &str) -> (&str, &str) {
    match raw.split_once('#') {
        Some((code, note)) => (code.trim(), note.trim()),
        None => (raw.trim(), ""),
    }
}

/// Parses a `Key : value` count header; returns `None` if the line is not a
/// header for `key`.
fn parse_count(code: &str, key: &str) -> Option<Result<usize, String>> {
    let rest = code.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix(':')?.trim();
    Some(
        rest.parse::<usize>()
            .map_err(|_| format!("invalid {key} count `{rest}`")),
    )
}

/// Parses a circuit from the two interchange files. The inverse of
/// [`write_bookshelf`]: a write/parse round-trip reproduces the cells and
/// nets (names, kinds, widths, delays, drivers, sinks, switching
/// probabilities) exactly.
pub fn parse_bookshelf(nodes: &str, nets: &str) -> Result<Netlist, BookshelfError> {
    let (name, cells) = parse_nodes(nodes)?;
    let mut builder = NetlistBuilder::new(name);
    let mut cell_ids: HashMap<String, crate::CellId> = HashMap::with_capacity(cells.len());
    for cell in cells {
        let cell_name = cell.name.clone();
        let id = builder.add_cell(cell);
        cell_ids.insert(cell_name, id);
    }
    parse_nets_into(nets, &mut builder, &cell_ids)?;
    Ok(builder.build()?)
}

/// Parses the `.nodes` file into the circuit name and the cell list.
fn parse_nodes(text: &str) -> Result<(String, Vec<Cell>), BookshelfError> {
    let syntax = |line: usize, reason: String| BookshelfError::Syntax {
        file: BookshelfFile::Nodes,
        line,
        reason,
    };
    let structure = |reason: String| BookshelfError::Structure {
        file: BookshelfFile::Nodes,
        reason,
    };

    let mut circuit: Option<String> = None;
    let mut saw_header = false;
    let mut declared_nodes: Option<usize> = None;
    let mut declared_terminals: Option<usize> = None;
    let mut cells: Vec<Cell> = Vec::new();
    let mut terminals = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let (code, note) = split_annotation(raw);
        if circuit.is_none() {
            if let Some(rest) = note.strip_prefix("circuit ") {
                circuit = Some(rest.trim().to_string());
            }
        }
        if code.is_empty() {
            continue;
        }
        if !saw_header {
            if code.starts_with("UCLA nodes") {
                saw_header = true;
                continue;
            }
            return Err(syntax(lineno, "expected `UCLA nodes` header".into()));
        }
        if let Some(count) = parse_count(code, "NumNodes") {
            declared_nodes = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }
        if let Some(count) = parse_count(code, "NumTerminals") {
            declared_terminals = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }

        // Node line: `<name> <width> <height> [terminal]`, annotated with
        // `<kind> <delay>`. Un-annotated lines (files written by other
        // tools) fall back to terminal→input / movable→logic with the
        // default logic delay.
        let mut tokens = code.split_whitespace();
        let node_name = tokens
            .next()
            .ok_or_else(|| syntax(lineno, "missing node name".into()))?;
        let width: u32 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| syntax(lineno, "missing or invalid node width".into()))?;
        let _height: u32 = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| syntax(lineno, "missing or invalid node height".into()))?;
        let is_terminal = match tokens.next() {
            None => false,
            Some("terminal") => true,
            Some(other) => {
                return Err(syntax(lineno, format!("unexpected token `{other}`")));
            }
        };

        let mut note_tokens = note.split_whitespace();
        let (kind, delay) = match note_tokens.next() {
            Some(mnemonic) => {
                let kind = CellKind::from_mnemonic(mnemonic).ok_or_else(|| {
                    syntax(lineno, format!("unknown cell kind annotation `{mnemonic}`"))
                })?;
                let delay: f64 = note_tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax(lineno, "missing or invalid delay annotation".into()))?;
                (kind, delay)
            }
            None if is_terminal => (CellKind::Input, 0.0),
            None => (CellKind::Logic, 0.1),
        };
        let kind_is_terminal = matches!(kind, CellKind::Input | CellKind::Output);
        if kind_is_terminal != is_terminal {
            return Err(syntax(
                lineno,
                format!(
                    "terminal flag disagrees with kind annotation `{}`",
                    kind.mnemonic()
                ),
            ));
        }
        if is_terminal {
            terminals += 1;
        }
        cells.push(Cell::new(node_name, kind, width, delay));
    }

    if !saw_header {
        return Err(structure("missing `UCLA nodes` header".into()));
    }
    if let Some(n) = declared_nodes {
        if n != cells.len() {
            return Err(structure(format!(
                "NumNodes declares {n} nodes but {} were listed",
                cells.len()
            )));
        }
    }
    if let Some(t) = declared_terminals {
        if t != terminals {
            return Err(structure(format!(
                "NumTerminals declares {t} terminals but {terminals} were listed"
            )));
        }
    }
    let name = circuit.unwrap_or_else(|| "bookshelf".to_string());
    Ok((name, cells))
}

/// Parses the `.nets` file, adding every net to `builder`.
fn parse_nets_into(
    text: &str,
    builder: &mut NetlistBuilder,
    cell_ids: &HashMap<String, crate::CellId>,
) -> Result<(), BookshelfError> {
    let syntax = |line: usize, reason: String| BookshelfError::Syntax {
        file: BookshelfFile::Nets,
        line,
        reason,
    };
    let structure = |reason: String| BookshelfError::Structure {
        file: BookshelfFile::Nets,
        reason,
    };

    let mut saw_header = false;
    let mut declared_nets: Option<usize> = None;
    let mut declared_pins: Option<usize> = None;
    let mut pins = 0usize;

    // In-flight net group: (line of the NetDegree header, name, declared
    // degree, switching prob, driver, sinks).
    struct Group {
        header_line: usize,
        name: String,
        degree: usize,
        sprob: f64,
        driver: Option<crate::CellId>,
        sinks: Vec<crate::CellId>,
    }
    let mut group: Option<Group> = None;
    let mut nets = 0usize;

    let finish_group =
        |g: Group, builder: &mut NetlistBuilder, nets: &mut usize| -> Result<(), BookshelfError> {
            let total = g.sinks.len() + usize::from(g.driver.is_some());
            if total != g.degree {
                return Err(BookshelfError::Syntax {
                    file: BookshelfFile::Nets,
                    line: g.header_line,
                    reason: format!(
                        "net `{}` declares degree {} but has {} pins",
                        g.name, g.degree, total
                    ),
                });
            }
            let driver = g.driver.ok_or(BookshelfError::Syntax {
                file: BookshelfFile::Nets,
                line: g.header_line,
                reason: format!("net `{}` has no output (`O`) pin", g.name),
            })?;
            builder.add_net(Net::new(g.name, driver, g.sinks, g.sprob));
            *nets += 1;
            Ok(())
        };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let (code, note) = split_annotation(raw);
        if code.is_empty() {
            continue;
        }
        if !saw_header {
            if code.starts_with("UCLA nets") {
                saw_header = true;
                continue;
            }
            return Err(syntax(lineno, "expected `UCLA nets` header".into()));
        }
        if let Some(count) = parse_count(code, "NumNets") {
            declared_nets = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }
        if let Some(count) = parse_count(code, "NumPins") {
            declared_pins = Some(count.map_err(|r| syntax(lineno, r))?);
            continue;
        }
        if let Some(rest) = code.strip_prefix("NetDegree") {
            if let Some(g) = group.take() {
                finish_group(g, builder, &mut nets)?;
            }
            let rest = rest
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| syntax(lineno, "expected `NetDegree : <d> <name>`".into()))?
                .trim();
            let mut tokens = rest.split_whitespace();
            let degree: usize = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| syntax(lineno, "missing or invalid net degree".into()))?;
            let net_name = tokens
                .next()
                .ok_or_else(|| syntax(lineno, "missing net name".into()))?;
            let sprob: f64 = if note.is_empty() {
                0.5
            } else {
                note.parse().map_err(|_| {
                    syntax(
                        lineno,
                        format!("invalid switching-prob annotation `{note}`"),
                    )
                })?
            };
            group = Some(Group {
                header_line: lineno,
                name: net_name.to_string(),
                degree,
                sprob,
                driver: None,
                sinks: Vec::new(),
            });
            continue;
        }

        // Pin line: `<cellname> <I|O>`.
        let g = group
            .as_mut()
            .ok_or_else(|| syntax(lineno, "pin line before any `NetDegree` header".into()))?;
        let mut tokens = code.split_whitespace();
        let cell_name = tokens
            .next()
            .ok_or_else(|| syntax(lineno, "missing pin cell name".into()))?;
        let id = *cell_ids
            .get(cell_name)
            .ok_or_else(|| syntax(lineno, format!("unknown cell `{cell_name}`")))?;
        match tokens.next() {
            Some("O") => {
                if g.driver.replace(id).is_some() {
                    return Err(syntax(
                        lineno,
                        format!("net `{}` has more than one output (`O`) pin", g.name),
                    ));
                }
            }
            Some("I") => g.sinks.push(id),
            other => {
                return Err(syntax(
                    lineno,
                    format!(
                        "expected pin direction `I` or `O`, got `{}`",
                        other.unwrap_or("")
                    ),
                ));
            }
        }
        pins += 1;
    }

    if !saw_header {
        return Err(structure("missing `UCLA nets` header".into()));
    }
    if let Some(g) = group.take() {
        finish_group(g, builder, &mut nets)?;
    }
    if let Some(n) = declared_nets {
        if n != nets {
            return Err(structure(format!(
                "NumNets declares {n} nets but {nets} were listed"
            )));
        }
    }
    if let Some(p) = declared_pins {
        if p != pins {
            return Err(structure(format!(
                "NumPins declares {p} pins but {pins} were listed"
            )));
        }
    }
    Ok(())
}

/// Paths of the two interchange files for a given stem: `<stem>.nodes` and
/// `<stem>.nets`.
pub fn bookshelf_paths(stem: &Path) -> (PathBuf, PathBuf) {
    (stem.with_extension("nodes"), stem.with_extension("nets"))
}

/// Dumps a circuit to `<stem>.nodes` / `<stem>.nets` on disk.
pub fn save_bookshelf(netlist: &Netlist, stem: &Path) -> Result<(), BookshelfError> {
    let (nodes_path, nets_path) = bookshelf_paths(stem);
    let pair = write_bookshelf(netlist);
    std::fs::write(&nodes_path, pair.nodes)
        .map_err(|e| BookshelfError::Io(format!("{}: {e}", nodes_path.display())))?;
    std::fs::write(&nets_path, pair.nets)
        .map_err(|e| BookshelfError::Io(format!("{}: {e}", nets_path.display())))?;
    Ok(())
}

/// Reloads a circuit previously dumped with [`save_bookshelf`].
pub fn load_bookshelf(stem: &Path) -> Result<Netlist, BookshelfError> {
    let (nodes_path, nets_path) = bookshelf_paths(stem);
    let nodes = std::fs::read_to_string(&nodes_path)
        .map_err(|e| BookshelfError::Io(format!("{}: {e}", nodes_path.display())))?;
    let nets = std::fs::read_to_string(&nets_path)
        .map_err(|e| BookshelfError::Io(format!("{}: {e}", nets_path.display())))?;
    parse_bookshelf(&nodes, &nets)
}

/// `true` when two netlists are identical circuits: same name and bitwise
/// equal cell and net tables. The derived CSR adjacency is a pure function of
/// the nets, so it is covered by the comparison.
pub fn netlists_identical(a: &Netlist, b: &Netlist) -> bool {
    a.name() == b.name() && a.cells() == b.cells() && a.nets() == b.nets()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite::{paper_circuit, PaperCircuit};
    use crate::generator::{CircuitGenerator, GeneratorConfig};

    fn sample() -> Netlist {
        CircuitGenerator::new(GeneratorConfig::sized("bookshelf_test", 140, 9)).generate()
    }

    #[test]
    fn roundtrip_is_identity_on_generated_circuits() {
        let original = sample();
        let pair = write_bookshelf(&original);
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert!(netlists_identical(&original, &parsed));
    }

    #[test]
    fn roundtrip_is_identity_on_a_paper_circuit() {
        let original = paper_circuit(PaperCircuit::S1238);
        let pair = write_bookshelf(&original);
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert!(netlists_identical(&original, &parsed));
    }

    #[test]
    fn nodes_file_declares_consistent_counts() {
        let nl = sample();
        let nodes = write_nodes(&nl);
        let stats = nl.stats();
        assert!(nodes.starts_with("UCLA nodes 1.0\n"));
        assert!(nodes.contains(&format!("NumNodes : {}", nl.num_cells())));
        assert!(nodes.contains(&format!("NumTerminals : {}", stats.inputs + stats.outputs)));
        assert_eq!(
            nodes.matches(" terminal ").count(),
            stats.inputs + stats.outputs
        );
    }

    #[test]
    fn nets_file_declares_consistent_counts() {
        let nl = sample();
        let nets = write_nets(&nl);
        let stats = nl.stats();
        assert!(nets.starts_with("UCLA nets 1.0\n"));
        assert!(nets.contains(&format!("NumNets : {}", nl.num_nets())));
        assert!(nets.contains(&format!("NumPins : {}", stats.pins)));
        assert_eq!(nets.matches("NetDegree :").count(), nl.num_nets());
    }

    #[test]
    fn save_and_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("sime_bookshelf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("sample");
        let original = sample();
        save_bookshelf(&original, &stem).unwrap();
        let reloaded = load_bookshelf(&stem).unwrap();
        assert!(netlists_identical(&original, &reloaded));
        let (nodes_path, nets_path) = bookshelf_paths(&stem);
        std::fs::remove_file(nodes_path).unwrap();
        std::fs::remove_file(nets_path).unwrap();
    }

    #[test]
    fn syntax_errors_carry_file_and_line() {
        // Line 4 of the nodes file has a bogus width.
        let nodes = "UCLA nodes 1.0\n# circuit x\nNumNodes : 1\n    a xx 1 terminal # in 0\n";
        let err = parse_bookshelf(nodes, "UCLA nets 1.0\nNumNets : 0\n").unwrap_err();
        assert_eq!(
            err,
            BookshelfError::Syntax {
                file: BookshelfFile::Nodes,
                line: 4,
                reason: "missing or invalid node width".into()
            }
        );

        // Line 4 of the nets file references an unknown cell.
        let nodes =
            "UCLA nodes 1.0\n# circuit x\n    a 1 1 terminal # in 0\n    b 1 1 # logic 0.1\n";
        let nets = "UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n0 # 0.5\n    bogus O\n    b I\n";
        let err = parse_bookshelf(nodes, nets).unwrap_err();
        assert!(
            matches!(
                err,
                BookshelfError::Syntax {
                    file: BookshelfFile::Nets,
                    line: 4,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn missing_driver_and_degree_mismatch_are_rejected() {
        let nodes = "UCLA nodes 1.0\n# circuit x\n    a 1 1 # logic 0.1\n    b 1 1 # logic 0.1\n";
        let all_inputs = "UCLA nets 1.0\nNetDegree : 2 n0 # 0.5\n    a I\n    b I\n";
        let err = parse_bookshelf(nodes, all_inputs).unwrap_err();
        assert!(err.to_string().contains("no output"), "{err}");

        let wrong_degree = "UCLA nets 1.0\nNetDegree : 3 n0 # 0.5\n    a O\n    b I\n";
        let err = parse_bookshelf(nodes, wrong_degree).unwrap_err();
        assert!(err.to_string().contains("declares degree 3"), "{err}");
    }

    #[test]
    fn count_mismatches_are_structure_errors() {
        let nodes = "UCLA nodes 1.0\nNumNodes : 5\n    a 1 1 # logic 0.1\n";
        let err = parse_nodes(nodes).unwrap_err();
        assert!(
            matches!(
                err,
                BookshelfError::Structure {
                    file: BookshelfFile::Nodes,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn plain_ucla_files_without_annotations_still_parse() {
        // Files written by other tools carry no kind/delay/sprob
        // annotations; the parser falls back to sensible defaults.
        let nodes = "UCLA nodes 1.0\nNumNodes : 3\n    p 2 1 terminal\n    g 4 1\n    q 3 1\n";
        let nets = "UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n\n    p O\n    g I\n";
        let nl = parse_bookshelf(nodes, nets).unwrap();
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.cell(nl.cell_by_name("p").unwrap()).kind, CellKind::Input);
        assert_eq!(nl.cell(nl.cell_by_name("g").unwrap()).kind, CellKind::Logic);
        assert_eq!(nl.net(nl.net_by_name("n").unwrap()).switching_prob, 0.5);
    }

    #[test]
    fn terminal_flag_must_agree_with_annotation() {
        let nodes = "UCLA nodes 1.0\n    a 1 1 terminal # logic 0.1\n";
        let err = parse_nodes(nodes).unwrap_err();
        assert!(err.to_string().contains("terminal flag disagrees"), "{err}");
    }
}
