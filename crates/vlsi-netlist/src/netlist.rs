//! The immutable circuit graph and its builder.

use crate::{Cell, CellId, CellKind, Net, NetId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Errors produced while constructing or validating a [`Netlist`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A net references a cell id that does not exist.
    DanglingCell {
        /// Name of the offending net.
        net: String,
        /// The out-of-range cell id.
        cell: CellId,
    },
    /// Two cells share the same instance name.
    DuplicateCellName(String),
    /// Two nets share the same name.
    DuplicateNetName(String),
    /// A net has no sinks.
    EmptyNet(String),
    /// A net's switching probability is outside `[0, 1]`.
    InvalidSwitchingProbability {
        /// Name of the offending net.
        net: String,
        /// The invalid probability value.
        value: f64,
    },
    /// A cell has zero width; every cell must occupy at least one layout unit.
    ZeroWidthCell(String),
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::DanglingCell { net, cell } => {
                write!(f, "net `{net}` references unknown cell {cell}")
            }
            NetlistError::DuplicateCellName(n) => write!(f, "duplicate cell name `{n}`"),
            NetlistError::DuplicateNetName(n) => write!(f, "duplicate net name `{n}`"),
            NetlistError::EmptyNet(n) => write!(f, "net `{n}` has no sinks"),
            NetlistError::InvalidSwitchingProbability { net, value } => {
                write!(
                    f,
                    "net `{net}` has switching probability {value} outside [0,1]"
                )
            }
            NetlistError::ZeroWidthCell(n) => write!(f, "cell `{n}` has zero width"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Summary statistics of a netlist, used by the benchmark suite and reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of cells.
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Total number of pins (sum of pin counts over all nets).
    pub pins: usize,
    /// Average net fanout (sinks per net).
    pub avg_fanout: f64,
    /// Maximum net fanout.
    pub max_fanout: usize,
    /// Number of sequential cells (flip-flops).
    pub flip_flops: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Sum of all cell widths (layout units).
    pub total_cell_width: u64,
    /// Number of macro blocks ([`CellKind::Macro`]).
    pub macros: usize,
    /// Number of fixed (pre-placed) cells of any kind.
    pub fixed_cells: usize,
    /// Sum of the widths of movable cells only — the area row packing
    /// actually distributes.
    pub movable_cell_width: u64,
}

/// An immutable gate-level circuit: cells, nets and derived connectivity.
///
/// Construct through [`NetlistBuilder`], the [generator](crate::generator) or
/// the [text format parser](crate::format). The derived fan-in / fan-out
/// tables are built once at construction so that the placement cost functions
/// can traverse connectivity without hashing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    /// CSR cell→nets adjacency: the nets of cell `c` occupy
    /// `cell_net_arena[cell_net_offsets[c] .. cell_net_offsets[c + 1]]`,
    /// fan-in nets first, then driven nets; `cell_net_split[c]` is the arena
    /// index where the driven nets start. One flat arena keeps the hot
    /// traversals of the placement cost kernels cache-friendly and
    /// allocation-free.
    cell_net_offsets: Vec<u32>,
    cell_net_split: Vec<u32>,
    cell_net_arena: Vec<NetId>,
    /// CSR net→cells adjacency: the distinct cells connected to net `n`
    /// (sorted by id, duplicates removed) occupy
    /// `net_cell_arena[net_cell_offsets[n] .. net_cell_offsets[n + 1]]`.
    net_cell_offsets: Vec<u32>,
    net_cell_arena: Vec<CellId>,
}

impl Netlist {
    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// All cells, indexed by [`CellId`].
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexed by [`NetId`].
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The cell with the given id.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterator over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterator over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Nets driven by `cell`.
    #[inline]
    pub fn nets_driven_by(&self, cell: CellId) -> &[NetId] {
        let i = cell.index();
        &self.cell_net_arena[self.cell_net_split[i] as usize..self.cell_net_offsets[i + 1] as usize]
    }

    /// Nets for which `cell` is a sink (the cell's fan-in nets).
    #[inline]
    pub fn nets_feeding(&self, cell: CellId) -> &[NetId] {
        let i = cell.index();
        &self.cell_net_arena[self.cell_net_offsets[i] as usize..self.cell_net_split[i] as usize]
    }

    /// All nets touching `cell` in either role (fan-in first, then driven),
    /// as one contiguous slice of the flat adjacency arena.
    #[inline]
    pub fn nets_of_cell(&self, cell: CellId) -> &[NetId] {
        let i = cell.index();
        &self.cell_net_arena
            [self.cell_net_offsets[i] as usize..self.cell_net_offsets[i + 1] as usize]
    }

    /// The distinct cells connected to `net`, sorted by cell id. This is the
    /// canonical pin order used by every cost kernel (naive and scratch-space
    /// alike), so the two evaluation paths sum pin contributions in the same
    /// order and stay bitwise identical.
    #[inline]
    pub fn net_cells(&self, net: NetId) -> &[CellId] {
        let i = net.index();
        &self.net_cell_arena
            [self.net_cell_offsets[i] as usize..self.net_cell_offsets[i + 1] as usize]
    }

    /// Cells that drive the fan-in nets of `cell` (its logical predecessors).
    pub fn fanin_cells(&self, cell: CellId) -> Vec<CellId> {
        let mut out: Vec<CellId> = self
            .nets_feeding(cell)
            .iter()
            .map(|&n| self.net(n).driver)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Cells fed by the nets driven by `cell` (its logical successors).
    pub fn fanout_cells(&self, cell: CellId) -> Vec<CellId> {
        let mut out: Vec<CellId> = self
            .nets_driven_by(cell)
            .iter()
            .flat_map(|&n| self.net(n).sinks.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Looks up a cell by instance name. Linear scan; intended for tests and
    /// the text-format parser, not hot paths.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(CellId::from)
    }

    /// Looks up a net by name. Linear scan.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(NetId::from)
    }

    /// Summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let pins: usize = self.nets.iter().map(Net::pin_count).sum();
        let total_sinks: usize = self.nets.iter().map(|n| n.sinks.len()).sum();
        NetlistStats {
            cells: self.cells.len(),
            nets: self.nets.len(),
            pins,
            avg_fanout: if self.nets.is_empty() {
                0.0
            } else {
                total_sinks as f64 / self.nets.len() as f64
            },
            max_fanout: self.nets.iter().map(|n| n.sinks.len()).max().unwrap_or(0),
            flip_flops: self
                .cells
                .iter()
                .filter(|c| c.kind == CellKind::FlipFlop)
                .count(),
            inputs: self
                .cells
                .iter()
                .filter(|c| c.kind == CellKind::Input)
                .count(),
            outputs: self
                .cells
                .iter()
                .filter(|c| c.kind == CellKind::Output)
                .count(),
            total_cell_width: self.cells.iter().map(|c| c.width as u64).sum(),
            macros: self
                .cells
                .iter()
                .filter(|c| c.kind == CellKind::Macro)
                .count(),
            fixed_cells: self.cells.iter().filter(|c| c.fixed).count(),
            movable_cell_width: self
                .cells
                .iter()
                .filter(|c| c.is_movable())
                .map(|c| c.width as u64)
                .sum(),
        }
    }

    /// `true` when the circuit carries at least one fixed (pre-placed) cell —
    /// the mixed-size tier. Pure standard-cell circuits return `false` and
    /// follow the exact code paths they always did.
    pub fn has_fixed_cells(&self) -> bool {
        self.cells.iter().any(|c| c.fixed)
    }
}

/// Incremental builder for [`Netlist`].
#[derive(Debug, Default, Clone)]
pub struct NetlistBuilder {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
}

impl NetlistBuilder {
    /// Starts a new netlist with the given circuit name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Adds a cell and returns its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId::from(self.cells.len());
        self.cells.push(cell);
        id
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, net: Net) -> NetId {
        let id = NetId::from(self.nets.len());
        self.nets.push(net);
        id
    }

    /// Validates the accumulated circuit and builds the immutable [`Netlist`].
    pub fn build(self) -> Result<Netlist, NetlistError> {
        let NetlistBuilder { name, cells, nets } = self;

        let mut seen_cells: HashMap<&str, ()> = HashMap::with_capacity(cells.len());
        for c in &cells {
            if c.width == 0 {
                return Err(NetlistError::ZeroWidthCell(c.name.clone()));
            }
            if seen_cells.insert(c.name.as_str(), ()).is_some() {
                return Err(NetlistError::DuplicateCellName(c.name.clone()));
            }
        }
        let mut seen_nets: HashMap<&str, ()> = HashMap::with_capacity(nets.len());
        for n in &nets {
            if seen_nets.insert(n.name.as_str(), ()).is_some() {
                return Err(NetlistError::DuplicateNetName(n.name.clone()));
            }
            if n.sinks.is_empty() {
                return Err(NetlistError::EmptyNet(n.name.clone()));
            }
            if !(0.0..=1.0).contains(&n.switching_prob) {
                return Err(NetlistError::InvalidSwitchingProbability {
                    net: n.name.clone(),
                    value: n.switching_prob,
                });
            }
            for cell in n.connected_cells() {
                if cell.index() >= cells.len() {
                    return Err(NetlistError::DanglingCell {
                        net: n.name.clone(),
                        cell,
                    });
                }
            }
        }

        let mut cell_out_nets = vec![Vec::new(); cells.len()];
        let mut cell_in_nets = vec![Vec::new(); cells.len()];
        for (i, n) in nets.iter().enumerate() {
            let nid = NetId::from(i);
            cell_out_nets[n.driver.index()].push(nid);
            for &s in &n.sinks {
                // A cell may appear several times as sink of the same net in a
                // degenerate netlist; record it once.
                if cell_in_nets[s.index()].last() != Some(&nid) {
                    cell_in_nets[s.index()].push(nid);
                }
            }
        }

        // Flatten the per-cell net lists into one CSR arena (fan-in nets
        // first, then driven nets, preserving net-id order within each role).
        let mut cell_net_offsets = Vec::with_capacity(cells.len() + 1);
        let mut cell_net_split = Vec::with_capacity(cells.len());
        let mut cell_net_arena =
            Vec::with_capacity(cell_in_nets.iter().map(Vec::len).sum::<usize>() + nets.len());
        cell_net_offsets.push(0u32);
        for (ins, outs) in cell_in_nets.iter().zip(cell_out_nets.iter()) {
            cell_net_arena.extend_from_slice(ins);
            cell_net_split.push(cell_net_arena.len() as u32);
            cell_net_arena.extend_from_slice(outs);
            cell_net_offsets.push(cell_net_arena.len() as u32);
        }

        // CSR net→cells arena: distinct connected cells per net, sorted by
        // id. This is the pin order every wirelength kernel iterates in.
        let mut net_cell_offsets = Vec::with_capacity(nets.len() + 1);
        let mut net_cell_arena = Vec::new();
        net_cell_offsets.push(0u32);
        let mut scratch: Vec<CellId> = Vec::new();
        for n in &nets {
            scratch.clear();
            scratch.extend(n.connected_cells());
            scratch.sort_unstable();
            scratch.dedup();
            net_cell_arena.extend_from_slice(&scratch);
            net_cell_offsets.push(net_cell_arena.len() as u32);
        }

        Ok(Netlist {
            name,
            cells,
            nets,
            cell_net_offsets,
            cell_net_split,
            cell_net_arena,
            net_cell_offsets,
            net_cell_arena,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        // in0 -> g0 -> g1 -> out0, plus a second net from g0 to out0.
        let mut b = NetlistBuilder::new("tiny");
        let i0 = b.add_cell(Cell::new("in0", CellKind::Input, 1, 0.0));
        let g0 = b.add_cell(Cell::logic("g0", 2));
        let g1 = b.add_cell(Cell::logic("g1", 3));
        let o0 = b.add_cell(Cell::new("out0", CellKind::Output, 1, 0.0));
        b.add_net(Net::new("n0", i0, vec![g0], 0.5));
        b.add_net(Net::new("n1", g0, vec![g1, o0], 0.3));
        b.add_net(Net::new("n2", g1, vec![o0], 0.2));
        b.build().unwrap()
    }

    #[test]
    fn builds_and_queries_connectivity() {
        let nl = tiny();
        assert_eq!(nl.num_cells(), 4);
        assert_eq!(nl.num_nets(), 3);
        let g0 = nl.cell_by_name("g0").unwrap();
        let g1 = nl.cell_by_name("g1").unwrap();
        let o0 = nl.cell_by_name("out0").unwrap();
        assert_eq!(nl.nets_driven_by(g0), &[NetId(1)]);
        assert_eq!(nl.nets_feeding(g0), &[NetId(0)]);
        assert_eq!(nl.fanout_cells(g0), vec![g1, o0]);
        assert_eq!(nl.fanin_cells(o0), vec![g0, g1]);
    }

    #[test]
    fn csr_adjacency_matches_role_queries() {
        let nl = tiny();
        for cell in nl.cell_ids() {
            let combined: Vec<NetId> = nl
                .nets_feeding(cell)
                .iter()
                .chain(nl.nets_driven_by(cell))
                .copied()
                .collect();
            assert_eq!(nl.nets_of_cell(cell), combined.as_slice());
        }
        for net in nl.net_ids() {
            let mut expected: Vec<CellId> = nl.net(net).connected_cells().collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(nl.net_cells(net), expected.as_slice());
        }
        let g0 = nl.cell_by_name("g0").unwrap();
        assert_eq!(nl.nets_of_cell(g0), &[NetId(0), NetId(1)]);
    }

    #[test]
    fn stats_are_consistent() {
        let nl = tiny();
        let s = nl.stats();
        assert_eq!(s.cells, 4);
        assert_eq!(s.nets, 3);
        assert_eq!(s.pins, 2 + 3 + 2);
        assert_eq!(s.inputs, 1);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.flip_flops, 0);
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.total_cell_width, 1 + 2 + 3 + 1);
        assert!((s.avg_fanout - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_duplicate_cell_names() {
        let mut b = NetlistBuilder::new("dup");
        b.add_cell(Cell::logic("x", 1));
        b.add_cell(Cell::logic("x", 1));
        assert_eq!(
            b.build().unwrap_err(),
            NetlistError::DuplicateCellName("x".into())
        );
    }

    #[test]
    fn rejects_duplicate_net_names() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.add_cell(Cell::logic("a", 1));
        let c = b.add_cell(Cell::logic("b", 1));
        b.add_net(Net::new("n", a, vec![c], 0.1));
        b.add_net(Net::new("n", c, vec![a], 0.1));
        assert_eq!(
            b.build().unwrap_err(),
            NetlistError::DuplicateNetName("n".into())
        );
    }

    #[test]
    fn rejects_dangling_cell_reference() {
        let mut b = NetlistBuilder::new("dangling");
        let a = b.add_cell(Cell::logic("a", 1));
        b.add_net(Net::new("n", a, vec![CellId(99)], 0.1));
        assert!(matches!(
            b.build().unwrap_err(),
            NetlistError::DanglingCell { .. }
        ));
    }

    #[test]
    fn rejects_empty_net() {
        let mut b = NetlistBuilder::new("empty");
        let a = b.add_cell(Cell::logic("a", 1));
        b.add_net(Net::new("n", a, vec![], 0.1));
        assert_eq!(b.build().unwrap_err(), NetlistError::EmptyNet("n".into()));
    }

    #[test]
    fn rejects_bad_switching_probability() {
        let mut b = NetlistBuilder::new("prob");
        let a = b.add_cell(Cell::logic("a", 1));
        let c = b.add_cell(Cell::logic("b", 1));
        b.add_net(Net::new("n", a, vec![c], 1.5));
        assert!(matches!(
            b.build().unwrap_err(),
            NetlistError::InvalidSwitchingProbability { .. }
        ));
    }

    #[test]
    fn rejects_zero_width_cell() {
        let mut b = NetlistBuilder::new("zero");
        b.add_cell(Cell::logic("a", 0));
        assert_eq!(
            b.build().unwrap_err(),
            NetlistError::ZeroWidthCell("a".into())
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetlistError::EmptyNet("foo".into());
        assert!(e.to_string().contains("foo"));
    }
}
