//! Standard cells and their identifiers.

use serde::{Deserialize, Serialize};

/// Index of a cell inside a [`crate::Netlist`].
///
/// Cell ids are dense: a netlist with `n` cells uses ids `0..n`. The id is a
/// `u32` to keep per-cell bookkeeping structures compact (the paper's largest
/// circuit, `s3330`, has 1561 cells; real designs reach a few million).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for CellId {
    fn from(v: u32) -> Self {
        CellId(v)
    }
}

impl From<usize> for CellId {
    fn from(v: usize) -> Self {
        CellId(v as u32)
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Functional class of a cell.
///
/// The placement engine only needs to distinguish movable logic from the
/// sequential boundary (flip-flops terminate combinational paths) and from the
/// I/O pads (path sources / sinks). The paper treats every standard cell as a
/// movable element; the mixed-size extension adds [`CellKind::Macro`] blocks
/// and a per-cell [`Cell::fixed`] flag for pre-placed pads and macros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Primary input pad (drives a net, no fan-in).
    Input,
    /// Primary output pad (terminates a net, no fan-out).
    Output,
    /// Combinational logic gate.
    Logic,
    /// Sequential element; terminates and restarts combinational paths.
    FlipFlop,
    /// A hard macro block (RAM, analog block, …). Macros span
    /// [`Cell::height`] rows and are pre-placed: the generator always marks
    /// them [`Cell::fixed`], and the placement layer treats their footprint
    /// as a blocked span that row packing flows around.
    Macro,
}

impl CellKind {
    /// `true` for cells that start a combinational path (inputs and flip-flop
    /// outputs).
    #[inline]
    pub fn is_path_source(self) -> bool {
        matches!(self, CellKind::Input | CellKind::FlipFlop)
    }

    /// `true` for cells that end a combinational path (outputs and flip-flop
    /// inputs).
    #[inline]
    pub fn is_path_sink(self) -> bool {
        matches!(self, CellKind::Output | CellKind::FlipFlop)
    }

    /// Short mnemonic used by the text netlist format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Input => "in",
            CellKind::Output => "out",
            CellKind::Logic => "logic",
            CellKind::FlipFlop => "ff",
            CellKind::Macro => "macro",
        }
    }

    /// Parses the mnemonic produced by [`CellKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        match s {
            "in" => Some(CellKind::Input),
            "out" => Some(CellKind::Output),
            "logic" => Some(CellKind::Logic),
            "ff" => Some(CellKind::FlipFlop),
            "macro" => Some(CellKind::Macro),
            _ => None,
        }
    }
}

/// A cell of the placement problem: a movable standard cell by default, or —
/// with `height > 1` and/or `fixed` — a macro block or pre-placed pad of the
/// mixed-size extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Human-readable instance name (unique within a netlist).
    pub name: String,
    /// Functional class.
    pub kind: CellKind,
    /// Cell width in layout units. Standard cells share a common height, so
    /// only the width matters for row packing and the width constraint.
    pub width: u32,
    /// Intrinsic switching delay `CD_i` of the cell (nanoseconds). Technology
    /// dependent and independent of placement; used by the delay cost.
    pub switching_delay: f64,
    /// Footprint height in rows. Standard cells are 1 row tall; macros span
    /// several. Heights above 1 are only meaningful together with `fixed`
    /// (the allocation operator never moves multi-row footprints).
    pub height: u32,
    /// `true` for pre-placed cells (pad rings, macro blocks). Fixed cells
    /// never enter the selection set and their footprint is excluded from the
    /// row packing of movable cells.
    pub fixed: bool,
}

impl Cell {
    /// Creates a logic cell with the given name and width and a default
    /// switching delay of 0.1 ns.
    pub fn logic(name: impl Into<String>, width: u32) -> Self {
        Cell::new(name, CellKind::Logic, width, 0.1)
    }

    /// Creates a movable single-row cell of an arbitrary kind.
    pub fn new(name: impl Into<String>, kind: CellKind, width: u32, switching_delay: f64) -> Self {
        Cell {
            name: name.into(),
            kind,
            width,
            switching_delay,
            height: 1,
            fixed: false,
        }
    }

    /// Creates a fixed macro block spanning `height` rows.
    pub fn macro_block(
        name: impl Into<String>,
        width: u32,
        height: u32,
        switching_delay: f64,
    ) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Macro,
            width,
            switching_delay,
            height: height.max(1),
            fixed: true,
        }
    }

    /// Returns the cell with its `fixed` flag set — used for pad rings.
    pub fn pinned(mut self) -> Self {
        self.fixed = true;
        self
    }

    /// `true` when the cell participates in row packing (not fixed).
    #[inline]
    pub fn is_movable(&self) -> bool {
        !self.fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_id_roundtrips_through_usize() {
        let id = CellId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(CellId::from(42u32), id);
        assert_eq!(id.to_string(), "c42");
    }

    #[test]
    fn kind_mnemonics_roundtrip() {
        for kind in [
            CellKind::Input,
            CellKind::Output,
            CellKind::Logic,
            CellKind::FlipFlop,
            CellKind::Macro,
        ] {
            assert_eq!(CellKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(CellKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn path_boundary_classification() {
        assert!(CellKind::Input.is_path_source());
        assert!(CellKind::FlipFlop.is_path_source());
        assert!(!CellKind::Logic.is_path_source());
        assert!(CellKind::Output.is_path_sink());
        assert!(CellKind::FlipFlop.is_path_sink());
        assert!(!CellKind::Input.is_path_sink());
    }

    #[test]
    fn logic_constructor_defaults() {
        let c = Cell::logic("u1", 4);
        assert_eq!(c.kind, CellKind::Logic);
        assert_eq!(c.width, 4);
        assert!(c.switching_delay > 0.0);
        assert_eq!(c.height, 1);
        assert!(!c.fixed);
        assert!(c.is_movable());
    }

    #[test]
    fn macro_and_pinned_constructors() {
        let m = Cell::macro_block("ram0", 40, 3, 0.2);
        assert_eq!(m.kind, CellKind::Macro);
        assert_eq!(m.height, 3);
        assert!(m.fixed);
        assert!(!m.is_movable());
        // Heights are clamped to at least one row.
        assert_eq!(Cell::macro_block("m", 4, 0, 0.1).height, 1);

        let pad = Cell::new("pi0", CellKind::Input, 1, 0.0).pinned();
        assert_eq!(pad.height, 1);
        assert!(pad.fixed);
    }
}
