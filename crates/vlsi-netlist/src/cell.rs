//! Standard cells and their identifiers.

use serde::{Deserialize, Serialize};

/// Index of a cell inside a [`crate::Netlist`].
///
/// Cell ids are dense: a netlist with `n` cells uses ids `0..n`. The id is a
/// `u32` to keep per-cell bookkeeping structures compact (the paper's largest
/// circuit, `s3330`, has 1561 cells; real designs reach a few million).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for CellId {
    fn from(v: u32) -> Self {
        CellId(v)
    }
}

impl From<usize> for CellId {
    fn from(v: usize) -> Self {
        CellId(v as u32)
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Functional class of a cell.
///
/// The placement engine only needs to distinguish movable logic from the
/// sequential boundary (flip-flops terminate combinational paths) and from the
/// I/O pads (path sources / sinks). All kinds are movable; the paper treats
/// every standard cell as a movable element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Primary input pad (drives a net, no fan-in).
    Input,
    /// Primary output pad (terminates a net, no fan-out).
    Output,
    /// Combinational logic gate.
    Logic,
    /// Sequential element; terminates and restarts combinational paths.
    FlipFlop,
}

impl CellKind {
    /// `true` for cells that start a combinational path (inputs and flip-flop
    /// outputs).
    #[inline]
    pub fn is_path_source(self) -> bool {
        matches!(self, CellKind::Input | CellKind::FlipFlop)
    }

    /// `true` for cells that end a combinational path (outputs and flip-flop
    /// inputs).
    #[inline]
    pub fn is_path_sink(self) -> bool {
        matches!(self, CellKind::Output | CellKind::FlipFlop)
    }

    /// Short mnemonic used by the text netlist format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Input => "in",
            CellKind::Output => "out",
            CellKind::Logic => "logic",
            CellKind::FlipFlop => "ff",
        }
    }

    /// Parses the mnemonic produced by [`CellKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        match s {
            "in" => Some(CellKind::Input),
            "out" => Some(CellKind::Output),
            "logic" => Some(CellKind::Logic),
            "ff" => Some(CellKind::FlipFlop),
            _ => None,
        }
    }
}

/// A standard cell (movable element of the placement problem).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Human-readable instance name (unique within a netlist).
    pub name: String,
    /// Functional class.
    pub kind: CellKind,
    /// Cell width in layout units. Standard cells share a common height, so
    /// only the width matters for row packing and the width constraint.
    pub width: u32,
    /// Intrinsic switching delay `CD_i` of the cell (nanoseconds). Technology
    /// dependent and independent of placement; used by the delay cost.
    pub switching_delay: f64,
}

impl Cell {
    /// Creates a logic cell with the given name and width and a default
    /// switching delay of 0.1 ns.
    pub fn logic(name: impl Into<String>, width: u32) -> Self {
        Cell {
            name: name.into(),
            kind: CellKind::Logic,
            width,
            switching_delay: 0.1,
        }
    }

    /// Creates a cell of an arbitrary kind.
    pub fn new(name: impl Into<String>, kind: CellKind, width: u32, switching_delay: f64) -> Self {
        Cell {
            name: name.into(),
            kind,
            width,
            switching_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_id_roundtrips_through_usize() {
        let id = CellId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(CellId::from(42u32), id);
        assert_eq!(id.to_string(), "c42");
    }

    #[test]
    fn kind_mnemonics_roundtrip() {
        for kind in [
            CellKind::Input,
            CellKind::Output,
            CellKind::Logic,
            CellKind::FlipFlop,
        ] {
            assert_eq!(CellKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(CellKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn path_boundary_classification() {
        assert!(CellKind::Input.is_path_source());
        assert!(CellKind::FlipFlop.is_path_source());
        assert!(!CellKind::Logic.is_path_source());
        assert!(CellKind::Output.is_path_sink());
        assert!(CellKind::FlipFlop.is_path_sink());
        assert!(!CellKind::Input.is_path_sink());
    }

    #[test]
    fn logic_constructor_defaults() {
        let c = Cell::logic("u1", 4);
        assert_eq!(c.kind, CellKind::Logic);
        assert_eq!(c.width, 4);
        assert!(c.switching_delay > 0.0);
    }
}
