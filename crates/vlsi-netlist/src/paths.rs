//! Extraction of long combinational paths for the delay cost.
//!
//! The paper's delay cost operates on a set of *given critical paths*: the
//! delay of a path is the sum of cell switching delays and interconnect delays
//! along it, and the circuit delay is the maximum over the path set
//! (`Cost_delay = max{T_π}`, Section 2). The original flow obtains those paths
//! from a static timing analysis of the ISCAS-89 circuits; here we extract
//! them directly from the netlist graph.
//!
//! A combinational path starts at a path source (primary input or flip-flop
//! output), traverses logic cells, and ends at a path sink (primary output or
//! flip-flop input). We enumerate, per source, the topologically longest
//! paths measured in *logic depth*, and keep the `max_paths` deepest overall.
//! Logic depth is a placement-independent proxy for criticality, which is
//! exactly the role the "given critical paths" play in the paper.

use crate::{CellId, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// A combinational path: an alternating cell/net chain stored as the ordered
/// list of cells and the nets connecting consecutive cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Cells along the path, source first.
    pub cells: Vec<CellId>,
    /// Net `nets[i]` connects `cells[i]` (driver) to `cells[i + 1]` (sink);
    /// `nets.len() == cells.len() - 1`.
    pub nets: Vec<NetId>,
}

impl Path {
    /// Number of nets (edges) on the path.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// `true` if the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }
}

/// Configuration for [`extract_paths`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathExtractionConfig {
    /// Maximum number of paths to keep (the deepest ones are kept).
    pub max_paths: usize,
    /// Minimum logic depth (number of nets) for a path to be considered.
    pub min_depth: usize,
    /// Safety bound on the DFS workload per source cell, to keep extraction
    /// cheap on reconvergent circuits.
    pub max_expansions_per_source: usize,
}

impl Default for PathExtractionConfig {
    fn default() -> Self {
        PathExtractionConfig {
            max_paths: 64,
            min_depth: 2,
            max_expansions_per_source: 20_000,
        }
    }
}

/// Extracts up to `config.max_paths` deep combinational paths from `netlist`.
///
/// Paths are returned sorted by decreasing depth. The extraction is
/// deterministic: ties are broken by cell id order.
pub fn extract_paths(netlist: &Netlist, config: &PathExtractionConfig) -> Vec<Path> {
    // Longest-depth labels via DFS memoisation on the combinational DAG.
    // depth[c] = max number of nets from c to any path sink, following
    // fanout edges but never passing *through* a sequential/output cell.
    let n = netlist.num_cells();
    let mut depth: Vec<Option<usize>> = vec![None; n];
    let mut on_stack = vec![false; n];

    // Iterative DFS computing the longest remaining depth from a cell, where
    // traversal stops at path-sink cells (their depth is 0). Cycles (possible
    // in a malformed netlist) are cut by treating back edges as depth 0.
    fn longest_depth(
        netlist: &Netlist,
        start: CellId,
        depth: &mut [Option<usize>],
        on_stack: &mut [bool],
    ) -> usize {
        #[derive(Clone, Copy)]
        enum Frame {
            Enter(CellId),
            Exit(CellId),
        }
        let mut stack = vec![Frame::Enter(start)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(c) => {
                    let ci = c.index();
                    if depth[ci].is_some() || on_stack[ci] {
                        continue;
                    }
                    on_stack[ci] = true;
                    stack.push(Frame::Exit(c));
                    if !netlist.cell(c).kind.is_path_sink() {
                        for &net in netlist.nets_driven_by(c) {
                            for &s in &netlist.net(net).sinks {
                                if depth[s.index()].is_none() && !on_stack[s.index()] {
                                    stack.push(Frame::Enter(s));
                                }
                            }
                        }
                    }
                }
                Frame::Exit(c) => {
                    let ci = c.index();
                    on_stack[ci] = false;
                    let kind = netlist.cell(c).kind;
                    let mut best = 0usize;
                    // A sink cell terminates the path: depth 0 beyond it.
                    if !kind.is_path_sink() {
                        for &net in netlist.nets_driven_by(c) {
                            for &s in &netlist.net(net).sinks {
                                let d = depth[s.index()].unwrap_or(0);
                                best = best.max(d + 1);
                            }
                        }
                    }
                    depth[ci] = Some(best);
                }
            }
        }
        depth[start.index()].unwrap_or(0)
    }

    // Depth of a path *starting* at `src`: one net to each successor plus the
    // successor's remaining depth. Computed explicitly so that flip-flops
    // (which are both path sinks and path sources) get the correct source
    // depth even though their memoised "remaining" depth is 0.
    fn source_depth(
        netlist: &Netlist,
        src: CellId,
        depth: &mut [Option<usize>],
        on_stack: &mut [bool],
    ) -> usize {
        let mut best = 0usize;
        for &net in netlist.nets_driven_by(src) {
            for &s in &netlist.net(net).sinks {
                if s == src {
                    continue;
                }
                let d = longest_depth(netlist, s, depth, on_stack);
                best = best.max(d + 1);
            }
        }
        best
    }

    let mut sources: Vec<CellId> = netlist
        .cell_ids()
        .filter(|&c| netlist.cell(c).kind.is_path_source())
        .collect();
    sources.sort_unstable();

    let mut paths: Vec<Path> = Vec::new();
    for &src in &sources {
        let d = source_depth(netlist, src, &mut depth, &mut on_stack);
        if d < config.min_depth {
            continue;
        }
        // Walk the critical (deepest) successor chain from the source.
        // Enumerate a handful of deep paths per source by following, at each
        // step, successors in order of decreasing remaining depth.
        let mut expansions = 0usize;
        let mut frontier: Vec<Path> = vec![Path {
            cells: vec![src],
            nets: vec![],
        }];
        let mut completed: Vec<Path> = Vec::new();
        while let Some(p) = frontier.pop() {
            if expansions >= config.max_expansions_per_source {
                break;
            }
            expansions += 1;
            let last = *p.cells.last().expect("path always has a head");
            let kind = netlist.cell(last).kind;
            let terminal = kind.is_path_sink() && !p.is_empty();
            if terminal {
                if p.len() >= config.min_depth {
                    completed.push(p);
                }
                continue;
            }
            // Collect successors sorted by decreasing remaining depth.
            let mut succ: Vec<(usize, NetId, CellId)> = Vec::new();
            for &net in netlist.nets_driven_by(last) {
                for &s in &netlist.net(net).sinks {
                    // Avoid revisiting a cell already on this path (cycles).
                    if p.cells.contains(&s) {
                        continue;
                    }
                    succ.push((depth[s.index()].unwrap_or(0), net, s));
                }
            }
            if succ.is_empty() {
                if p.len() >= config.min_depth {
                    completed.push(p);
                }
                continue;
            }
            succ.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
            // Follow at most the two most critical branches to bound the
            // enumeration while still producing multiple distinct paths.
            for &(_, net, s) in succ.iter().take(2) {
                let mut np = p.clone();
                np.cells.push(s);
                np.nets.push(net);
                frontier.push(np);
            }
        }
        completed.sort_by_key(|p| std::cmp::Reverse(p.len()));
        paths.extend(completed.into_iter().take(4));
    }

    paths.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cells.cmp(&b.cells)));
    paths.truncate(config.max_paths);
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, CellKind, Net, NetlistBuilder};

    /// in -> g1 -> g2 -> g3 -> out  (depth 4)
    /// in -> g4 -> out              (depth 2)
    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let i = b.add_cell(Cell::new("in", CellKind::Input, 1, 0.0));
        let g1 = b.add_cell(Cell::logic("g1", 1));
        let g2 = b.add_cell(Cell::logic("g2", 1));
        let g3 = b.add_cell(Cell::logic("g3", 1));
        let g4 = b.add_cell(Cell::logic("g4", 1));
        let o = b.add_cell(Cell::new("out", CellKind::Output, 1, 0.0));
        b.add_net(Net::new("n_i_g1", i, vec![g1, g4], 0.5));
        b.add_net(Net::new("n_g1_g2", g1, vec![g2], 0.5));
        b.add_net(Net::new("n_g2_g3", g2, vec![g3], 0.5));
        b.add_net(Net::new("n_g3_o", g3, vec![o], 0.5));
        b.add_net(Net::new("n_g4_o", g4, vec![o], 0.5));
        b.build().unwrap()
    }

    #[test]
    fn finds_the_longest_path_first() {
        let nl = chain();
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        assert!(!paths.is_empty());
        let longest = &paths[0];
        assert_eq!(longest.len(), 4);
        assert_eq!(longest.cells.len(), 5);
        assert_eq!(nl.cell(longest.cells[0]).name, "in");
        assert_eq!(nl.cell(*longest.cells.last().unwrap()).name, "out");
    }

    #[test]
    fn paths_alternate_cells_and_nets_consistently() {
        let nl = chain();
        for p in extract_paths(&nl, &PathExtractionConfig::default()) {
            assert_eq!(p.nets.len() + 1, p.cells.len());
            for (i, &net) in p.nets.iter().enumerate() {
                let n = nl.net(net);
                assert_eq!(n.driver, p.cells[i]);
                assert!(n.sinks.contains(&p.cells[i + 1]));
            }
        }
    }

    #[test]
    fn min_depth_filters_short_paths() {
        let nl = chain();
        let cfg = PathExtractionConfig {
            min_depth: 3,
            ..Default::default()
        };
        for p in extract_paths(&nl, &cfg) {
            assert!(p.len() >= 3);
        }
    }

    #[test]
    fn flip_flops_terminate_paths() {
        // in -> g1 -> ff -> g2 -> out: two paths of depth 2, none of depth 4.
        let mut b = NetlistBuilder::new("ff");
        let i = b.add_cell(Cell::new("in", CellKind::Input, 1, 0.0));
        let g1 = b.add_cell(Cell::logic("g1", 1));
        let ff = b.add_cell(Cell::new("ff", CellKind::FlipFlop, 2, 0.2));
        let g2 = b.add_cell(Cell::logic("g2", 1));
        let o = b.add_cell(Cell::new("out", CellKind::Output, 1, 0.0));
        b.add_net(Net::new("n0", i, vec![g1], 0.5));
        b.add_net(Net::new("n1", g1, vec![ff], 0.5));
        b.add_net(Net::new("n2", ff, vec![g2], 0.5));
        b.add_net(Net::new("n3", g2, vec![o], 0.5));
        let nl = b.build().unwrap();
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(p.len() <= 2, "path {:?} crosses the flip-flop", p);
        }
        // Both register-bounded segments are found.
        assert!(paths.iter().any(|p| p.cells[0] == i));
        assert!(paths.iter().any(|p| p.cells[0] == ff));
    }

    #[test]
    fn empty_netlist_has_no_paths() {
        let nl = NetlistBuilder::new("empty").build().unwrap();
        assert!(extract_paths(&nl, &PathExtractionConfig::default()).is_empty());
    }

    #[test]
    fn max_paths_truncates() {
        let nl = chain();
        let cfg = PathExtractionConfig {
            max_paths: 1,
            min_depth: 1,
            ..Default::default()
        };
        assert_eq!(extract_paths(&nl, &cfg).len(), 1);
    }
}
