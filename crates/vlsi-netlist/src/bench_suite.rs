//! The paper's benchmark circuits, regenerated synthetically, plus an
//! extended tier of larger ISCAS-class circuits for scaling studies.
//!
//! The paper reports results on five ISCAS-89 circuits. The table below lists
//! the published cell counts (Table 1 of the paper) and the I/O / flip-flop
//! counts of the original ISCAS-89 netlists, which the synthetic stand-ins
//! reproduce:
//!
//! | Circuit | Cells (paper) | Inputs | Outputs | Flip-flops |
//! |---------|---------------|--------|---------|------------|
//! | s1196   | 561           | 14     | 14      | 18         |
//! | s1238   | 540           | 14     | 14      | 18         |
//! | s1488   | 667           | 8      | 19      | 6          |
//! | s1494   | 661           | 8      | 19      | 6          |
//! | s3330   | 1561          | 40     | 73      | 132        |
//!
//! The [`ExtendedCircuit`] tier goes beyond the paper: four larger ISCAS-89
//! circuits (the next size steps of the same benchmark family), regenerated
//! with the published ISCAS-89 gate/I/O/flip-flop counts and the same
//! connectivity statistics the paper-tier stand-ins use:
//!
//! | Circuit | Cells  | Inputs | Outputs | Flip-flops | Rows |
//! |---------|--------|--------|---------|------------|------|
//! | s5378   | 2779   | 35     | 49      | 179        | 22   |
//! | s9234   | 5597   | 36     | 39      | 211        | 32   |
//! | s13207  | 8589   | 62     | 152     | 638        | 40   |
//! | s15850  | 10306  | 77     | 150     | 534        | 44   |
//!
//! Row counts follow the same near-square aspect-ratio rule as the paper
//! tier (rows ≈ 0.43·√cells, rounded to an even number), so layouts keep the
//! standard-cell shape as the circuits grow.
//!
//! Because the real netlists cannot be redistributed, [`paper_circuit`] and
//! [`extended_circuit`] generate deterministic synthetic circuits with these
//! exact counts and ISCAS-like connectivity statistics (see
//! [`crate::generator`]). The seed is derived from the circuit name, so the
//! whole workspace always sees the same circuits. [`SuiteCircuit`] is the
//! uniform handle over both tiers used by the scenario-matrix runner, and
//! every suite circuit can be dumped to / reloaded from disk through
//! [`crate::format`] or [`crate::bookshelf`] instead of being regenerated.

use crate::generator::{CircuitGenerator, GeneratorConfig};
use crate::Netlist;
use serde::{Deserialize, Serialize};

/// Derives the deterministic generator seed from a circuit name (shared by
/// both suite tiers so a circuit's identity is exactly its name).
fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0xC0FFEE_u64, |acc, b| {
        acc.wrapping_mul(131).wrapping_add(b as u64)
    })
}

/// Identifier of one of the five circuits used in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperCircuit {
    /// ISCAS-89 s1196 — 561 cells.
    S1196,
    /// ISCAS-89 s1238 — 540 cells.
    S1238,
    /// ISCAS-89 s1488 — 667 cells.
    S1488,
    /// ISCAS-89 s1494 — 661 cells.
    S1494,
    /// ISCAS-89 s3330 — 1561 cells.
    S3330,
}

impl PaperCircuit {
    /// All five circuits, in the order they appear in Table 1.
    pub const ALL: [PaperCircuit; 5] = [
        PaperCircuit::S1196,
        PaperCircuit::S1488,
        PaperCircuit::S1494,
        PaperCircuit::S1238,
        PaperCircuit::S3330,
    ];

    /// Circuit name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperCircuit::S1196 => "s1196",
            PaperCircuit::S1238 => "s1238",
            PaperCircuit::S1488 => "s1488",
            PaperCircuit::S1494 => "s1494",
            PaperCircuit::S3330 => "s3330",
        }
    }

    /// Cell count published in Table 1 of the paper.
    pub fn cell_count(self) -> usize {
        match self {
            PaperCircuit::S1196 => 561,
            PaperCircuit::S1238 => 540,
            PaperCircuit::S1488 => 667,
            PaperCircuit::S1494 => 661,
            PaperCircuit::S3330 => 1561,
        }
    }

    /// Number of placement rows used for this circuit throughout the
    /// workspace. The paper does not publish row counts; we use the usual
    /// near-square aspect-ratio rule for standard-cell layouts, which also
    /// leaves enough rows for the Type II row decomposition at up to five
    /// processors.
    pub fn num_rows(self) -> usize {
        match self {
            PaperCircuit::S1196 | PaperCircuit::S1238 => 10,
            PaperCircuit::S1488 | PaperCircuit::S1494 => 11,
            PaperCircuit::S3330 => 16,
        }
    }

    /// (inputs, outputs, flip-flops) of the original ISCAS-89 circuit.
    pub fn io_counts(self) -> (usize, usize, usize) {
        match self {
            PaperCircuit::S1196 => (14, 14, 18),
            PaperCircuit::S1238 => (14, 14, 18),
            PaperCircuit::S1488 => (8, 19, 6),
            PaperCircuit::S1494 => (8, 19, 6),
            PaperCircuit::S3330 => (40, 73, 132),
        }
    }

    /// Parses a paper circuit from its table name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Generator configuration used for the synthetic stand-in.
    pub fn generator_config(self) -> GeneratorConfig {
        let (inputs, outputs, ffs) = self.io_counts();
        // Seed derived from the name so every build sees identical circuits.
        GeneratorConfig {
            name: self.name().to_string(),
            num_cells: self.cell_count(),
            num_inputs: inputs,
            num_outputs: outputs,
            num_flip_flops: ffs,
            logic_depth: if self == PaperCircuit::S3330 { 16 } else { 12 },
            avg_fanin: 2.3,
            seed: name_seed(self.name()),
            mixed: None,
        }
    }
}

impl std::fmt::Display for PaperCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the synthetic stand-in for one of the paper's circuits.
pub fn paper_circuit(circuit: PaperCircuit) -> Netlist {
    CircuitGenerator::new(circuit.generator_config()).generate()
}

/// Generates the full five-circuit suite in Table-1 order.
pub fn paper_suite() -> Vec<(PaperCircuit, Netlist)> {
    PaperCircuit::ALL
        .iter()
        .map(|&c| (c, paper_circuit(c)))
        .collect()
}

/// Identifier of one of the extended-tier ISCAS-89 circuits (larger than any
/// circuit in the paper's tables; see the [module docs](self) for the size
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtendedCircuit {
    /// ISCAS-89 s5378 — 2779 cells.
    S5378,
    /// ISCAS-89 s9234 — 5597 cells.
    S9234,
    /// ISCAS-89 s13207 — 8589 cells.
    S13207,
    /// ISCAS-89 s15850 — 10306 cells.
    S15850,
}

impl ExtendedCircuit {
    /// All extended circuits, smallest first.
    pub const ALL: [ExtendedCircuit; 4] = [
        ExtendedCircuit::S5378,
        ExtendedCircuit::S9234,
        ExtendedCircuit::S13207,
        ExtendedCircuit::S15850,
    ];

    /// Circuit name (the ISCAS-89 benchmark name).
    pub fn name(self) -> &'static str {
        match self {
            ExtendedCircuit::S5378 => "s5378",
            ExtendedCircuit::S9234 => "s9234",
            ExtendedCircuit::S13207 => "s13207",
            ExtendedCircuit::S15850 => "s15850",
        }
    }

    /// Published ISCAS-89 cell count.
    pub fn cell_count(self) -> usize {
        match self {
            ExtendedCircuit::S5378 => 2779,
            ExtendedCircuit::S9234 => 5597,
            ExtendedCircuit::S13207 => 8589,
            ExtendedCircuit::S15850 => 10306,
        }
    }

    /// Number of placement rows (near-square aspect-ratio rule, even counts
    /// so the Type II strided pattern stays balanced).
    pub fn num_rows(self) -> usize {
        match self {
            ExtendedCircuit::S5378 => 22,
            ExtendedCircuit::S9234 => 32,
            ExtendedCircuit::S13207 => 40,
            ExtendedCircuit::S15850 => 44,
        }
    }

    /// (inputs, outputs, flip-flops) of the original ISCAS-89 circuit.
    pub fn io_counts(self) -> (usize, usize, usize) {
        match self {
            ExtendedCircuit::S5378 => (35, 49, 179),
            ExtendedCircuit::S9234 => (36, 39, 211),
            ExtendedCircuit::S13207 => (62, 152, 638),
            ExtendedCircuit::S15850 => (77, 150, 534),
        }
    }

    /// Parses an extended circuit from its benchmark name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Generator configuration used for the synthetic stand-in. Deeper logic
    /// than the paper tier: the original circuits' combinational depth grows
    /// with size, and deeper levelisation keeps the critical paths long
    /// relative to the layout.
    pub fn generator_config(self) -> GeneratorConfig {
        let (inputs, outputs, ffs) = self.io_counts();
        let logic_depth = match self {
            ExtendedCircuit::S5378 => 20,
            ExtendedCircuit::S9234 => 24,
            ExtendedCircuit::S13207 => 28,
            ExtendedCircuit::S15850 => 30,
        };
        GeneratorConfig {
            name: self.name().to_string(),
            num_cells: self.cell_count(),
            num_inputs: inputs,
            num_outputs: outputs,
            num_flip_flops: ffs,
            logic_depth,
            avg_fanin: 2.3,
            seed: name_seed(self.name()),
            mixed: None,
        }
    }
}

impl std::fmt::Display for ExtendedCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the synthetic stand-in for one extended-tier circuit.
pub fn extended_circuit(circuit: ExtendedCircuit) -> Netlist {
    CircuitGenerator::new(circuit.generator_config()).generate()
}

/// Generates the extended-tier suite, smallest circuit first.
pub fn extended_suite() -> Vec<(ExtendedCircuit, Netlist)> {
    ExtendedCircuit::ALL
        .iter()
        .map(|&c| (c, extended_circuit(c)))
        .collect()
}

/// Identifier of one of the mixed-size tier circuits: synthetic circuits
/// with a fixed pad ring and multi-row macro blocks on top of the standard
/// cells (see [`crate::generator::MixedSizeSpec`]). This tier exercises the
/// blocked-span row packing and the full-layout Bookshelf interchange
/// (`.pl`/`.scl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MixedCircuit {
    /// ~600 standard cells, 2 macros (3 rows tall), pad ring. 12 rows.
    Mix600,
    /// ~2000 standard cells, 4 macros (4 rows tall), pad ring. 20 rows.
    Mix2000,
}

impl MixedCircuit {
    /// Both mixed-tier circuits, smallest first.
    pub const ALL: [MixedCircuit; 2] = [MixedCircuit::Mix600, MixedCircuit::Mix2000];

    /// Circuit name.
    pub fn name(self) -> &'static str {
        match self {
            MixedCircuit::Mix600 => "mix600",
            MixedCircuit::Mix2000 => "mix2000",
        }
    }

    /// Total cell count: standard cells plus the appended macro blocks.
    pub fn cell_count(self) -> usize {
        let cfg = self.generator_config();
        cfg.num_cells + cfg.mixed.map_or(0, |m| m.num_macros)
    }

    /// Number of placement rows.
    pub fn num_rows(self) -> usize {
        match self {
            MixedCircuit::Mix600 => 12,
            MixedCircuit::Mix2000 => 20,
        }
    }

    /// The mixed-size additions of this circuit.
    pub fn mixed_spec(self) -> crate::generator::MixedSizeSpec {
        match self {
            MixedCircuit::Mix600 => crate::generator::MixedSizeSpec {
                num_macros: 2,
                macro_height: 3,
                pad_ring: true,
            },
            MixedCircuit::Mix2000 => crate::generator::MixedSizeSpec {
                num_macros: 4,
                macro_height: 4,
                pad_ring: true,
            },
        }
    }

    /// Parses a mixed circuit from its name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Generator configuration: paper-tier-like proportions, plus the
    /// mixed-size spec.
    pub fn generator_config(self) -> GeneratorConfig {
        let (num_cells, inputs, outputs, ffs, depth) = match self {
            MixedCircuit::Mix600 => (600, 16, 16, 24, 12),
            MixedCircuit::Mix2000 => (2000, 24, 28, 80, 16),
        };
        GeneratorConfig {
            name: self.name().to_string(),
            num_cells,
            num_inputs: inputs,
            num_outputs: outputs,
            num_flip_flops: ffs,
            logic_depth: depth,
            avg_fanin: 2.3,
            seed: name_seed(self.name()),
            mixed: Some(self.mixed_spec()),
        }
    }
}

impl std::fmt::Display for MixedCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the synthetic stand-in for one mixed-tier circuit.
pub fn mixed_circuit(circuit: MixedCircuit) -> Netlist {
    CircuitGenerator::new(circuit.generator_config()).generate()
}

/// Uniform handle over the three benchmark tiers: the paper's five circuits,
/// the extended scaling tier and the mixed-size tier. This is the circuit
/// axis of the scenario matrix — every suite circuit resolves from its name,
/// generates deterministically, and carries its own row count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteCircuit {
    /// One of the paper's five Table-1 circuits.
    Paper(PaperCircuit),
    /// One of the extended-tier circuits.
    Extended(ExtendedCircuit),
    /// One of the mixed-size tier circuits (pad ring + macros).
    Mixed(MixedCircuit),
}

impl SuiteCircuit {
    /// All eleven suite circuits: the paper tier in Table-1 order, the
    /// extended tier smallest first, then the mixed-size tier.
    pub const ALL: [SuiteCircuit; 11] = [
        SuiteCircuit::Paper(PaperCircuit::S1196),
        SuiteCircuit::Paper(PaperCircuit::S1488),
        SuiteCircuit::Paper(PaperCircuit::S1494),
        SuiteCircuit::Paper(PaperCircuit::S1238),
        SuiteCircuit::Paper(PaperCircuit::S3330),
        SuiteCircuit::Extended(ExtendedCircuit::S5378),
        SuiteCircuit::Extended(ExtendedCircuit::S9234),
        SuiteCircuit::Extended(ExtendedCircuit::S13207),
        SuiteCircuit::Extended(ExtendedCircuit::S15850),
        SuiteCircuit::Mixed(MixedCircuit::Mix600),
        SuiteCircuit::Mixed(MixedCircuit::Mix2000),
    ];

    /// Circuit name.
    pub fn name(self) -> &'static str {
        match self {
            SuiteCircuit::Paper(c) => c.name(),
            SuiteCircuit::Extended(c) => c.name(),
            SuiteCircuit::Mixed(c) => c.name(),
        }
    }

    /// Published (or, for the synthetic mixed tier, configured) cell count.
    pub fn cell_count(self) -> usize {
        match self {
            SuiteCircuit::Paper(c) => c.cell_count(),
            SuiteCircuit::Extended(c) => c.cell_count(),
            SuiteCircuit::Mixed(c) => c.cell_count(),
        }
    }

    /// Number of placement rows used throughout the workspace.
    pub fn num_rows(self) -> usize {
        match self {
            SuiteCircuit::Paper(c) => c.num_rows(),
            SuiteCircuit::Extended(c) => c.num_rows(),
            SuiteCircuit::Mixed(c) => c.num_rows(),
        }
    }

    /// `true` for extended-tier circuits.
    pub fn is_extended(self) -> bool {
        matches!(self, SuiteCircuit::Extended(_))
    }

    /// `true` for mixed-size tier circuits (fixed pads + macros).
    pub fn is_mixed(self) -> bool {
        matches!(self, SuiteCircuit::Mixed(_))
    }

    /// Resolves a suite circuit from its name, searching all tiers.
    pub fn from_name(name: &str) -> Option<Self> {
        PaperCircuit::from_name(name)
            .map(SuiteCircuit::Paper)
            .or_else(|| ExtendedCircuit::from_name(name).map(SuiteCircuit::Extended))
            .or_else(|| MixedCircuit::from_name(name).map(SuiteCircuit::Mixed))
    }

    /// Generator configuration for the synthetic stand-in.
    pub fn generator_config(self) -> GeneratorConfig {
        match self {
            SuiteCircuit::Paper(c) => c.generator_config(),
            SuiteCircuit::Extended(c) => c.generator_config(),
            SuiteCircuit::Mixed(c) => c.generator_config(),
        }
    }

    /// Generates the circuit.
    pub fn generate(self) -> Netlist {
        CircuitGenerator::new(self.generator_config()).generate()
    }
}

impl std::fmt::Display for SuiteCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the full eleven-circuit suite (all tiers), in
/// [`SuiteCircuit::ALL`] order. The extended circuits take noticeably longer
/// to generate; callers that only need the paper tier should use
/// [`paper_suite`].
pub fn full_suite() -> Vec<(SuiteCircuit, Netlist)> {
    SuiteCircuit::ALL
        .iter()
        .map(|&c| (c, c.generate()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_counts_match_the_paper() {
        for c in PaperCircuit::ALL {
            let nl = paper_circuit(c);
            assert_eq!(nl.num_cells(), c.cell_count(), "circuit {c}");
            assert_eq!(nl.name(), c.name());
        }
    }

    #[test]
    fn io_counts_match_iscas89() {
        for c in PaperCircuit::ALL {
            let nl = paper_circuit(c);
            let stats = nl.stats();
            let (i, o, ff) = c.io_counts();
            assert_eq!(stats.inputs, i, "{c} inputs");
            assert_eq!(stats.outputs, o, "{c} outputs");
            assert_eq!(stats.flip_flops, ff, "{c} flip-flops");
        }
    }

    #[test]
    fn suite_is_in_table_order() {
        let suite = paper_suite();
        let names: Vec<_> = suite.iter().map(|(c, _)| c.name()).collect();
        assert_eq!(names, vec!["s1196", "s1488", "s1494", "s1238", "s3330"]);
    }

    #[test]
    fn name_roundtrip() {
        for c in PaperCircuit::ALL {
            assert_eq!(PaperCircuit::from_name(c.name()), Some(c));
        }
        assert_eq!(PaperCircuit::from_name("s9999"), None);
    }

    #[test]
    fn regeneration_is_stable() {
        let a = paper_circuit(PaperCircuit::S1196);
        let b = paper_circuit(PaperCircuit::S1196);
        assert_eq!(a.num_nets(), b.num_nets());
        assert_eq!(a.nets()[0], b.nets()[0]);
    }

    #[test]
    fn rows_leave_room_for_five_partitions() {
        for c in PaperCircuit::ALL {
            assert!(
                c.num_rows() >= 10,
                "{c} must have at least 2 rows per processor at p=5"
            );
        }
        for c in ExtendedCircuit::ALL {
            assert!(
                c.num_rows() >= 10,
                "{c} must have at least 2 rows per processor at p=5"
            );
        }
    }

    #[test]
    fn extended_cell_and_io_counts_match_iscas89() {
        // Only the two smallest extended circuits are generated here to keep
        // the unit-test budget small; the scenario-matrix runner exercises
        // the full tier.
        for c in [ExtendedCircuit::S5378, ExtendedCircuit::S9234] {
            let nl = extended_circuit(c);
            assert_eq!(nl.num_cells(), c.cell_count(), "circuit {c}");
            assert_eq!(nl.name(), c.name());
            let stats = nl.stats();
            let (i, o, ff) = c.io_counts();
            assert_eq!(stats.inputs, i, "{c} inputs");
            assert_eq!(stats.outputs, o, "{c} outputs");
            assert_eq!(stats.flip_flops, ff, "{c} flip-flops");
            assert!(
                stats.avg_fanout > 1.2 && stats.avg_fanout < 4.0,
                "{c} average fanout {} outside the gate-level range",
                stats.avg_fanout
            );
        }
    }

    #[test]
    fn suite_circuit_resolves_all_tiers_by_name() {
        assert_eq!(SuiteCircuit::ALL.len(), 11);
        for c in SuiteCircuit::ALL {
            assert_eq!(SuiteCircuit::from_name(c.name()), Some(c));
            // cell_count is the *generated* count: standard cells plus any
            // appended mixed-tier macros.
            let cfg = c.generator_config();
            let macros = cfg.mixed.map_or(0, |m| m.num_macros);
            assert_eq!(cfg.num_cells + macros, c.cell_count());
        }
        assert_eq!(
            SuiteCircuit::from_name("s1196"),
            Some(SuiteCircuit::Paper(PaperCircuit::S1196))
        );
        assert_eq!(
            SuiteCircuit::from_name("s13207"),
            Some(SuiteCircuit::Extended(ExtendedCircuit::S13207))
        );
        assert!(SuiteCircuit::from_name("s9999").is_none());
        assert!(SuiteCircuit::Extended(ExtendedCircuit::S5378).is_extended());
        assert!(!SuiteCircuit::Paper(PaperCircuit::S3330).is_extended());
    }

    #[test]
    fn extended_rows_follow_the_near_square_rule() {
        for c in ExtendedCircuit::ALL {
            let near_square = 0.43 * (c.cell_count() as f64).sqrt();
            let rows = c.num_rows() as f64;
            assert!(
                (rows - near_square).abs() < 4.0,
                "{c}: rows {rows} too far from the near-square rule {near_square:.1}"
            );
            assert_eq!(c.num_rows() % 2, 0, "{c} row count must be even");
        }
    }
}
