//! The paper's benchmark circuits, regenerated synthetically.
//!
//! The paper reports results on five ISCAS-89 circuits. The table below lists
//! the published cell counts (Table 1 of the paper) and the I/O / flip-flop
//! counts of the original ISCAS-89 netlists, which the synthetic stand-ins
//! reproduce:
//!
//! | Circuit | Cells (paper) | Inputs | Outputs | Flip-flops |
//! |---------|---------------|--------|---------|------------|
//! | s1196   | 561           | 14     | 14      | 18         |
//! | s1238   | 540           | 14     | 14      | 18         |
//! | s1488   | 667           | 8      | 19      | 6          |
//! | s1494   | 661           | 8      | 19      | 6          |
//! | s3330   | 1561          | 40     | 73      | 132        |
//!
//! Because the real netlists cannot be redistributed, [`paper_circuit`]
//! generates a deterministic synthetic circuit with these exact counts and
//! ISCAS-like connectivity statistics (see [`crate::generator`]). The seed is
//! derived from the circuit name, so the whole workspace always sees the same
//! five circuits.

use crate::generator::{CircuitGenerator, GeneratorConfig};
use crate::Netlist;
use serde::{Deserialize, Serialize};

/// Identifier of one of the five circuits used in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperCircuit {
    /// ISCAS-89 s1196 — 561 cells.
    S1196,
    /// ISCAS-89 s1238 — 540 cells.
    S1238,
    /// ISCAS-89 s1488 — 667 cells.
    S1488,
    /// ISCAS-89 s1494 — 661 cells.
    S1494,
    /// ISCAS-89 s3330 — 1561 cells.
    S3330,
}

impl PaperCircuit {
    /// All five circuits, in the order they appear in Table 1.
    pub const ALL: [PaperCircuit; 5] = [
        PaperCircuit::S1196,
        PaperCircuit::S1488,
        PaperCircuit::S1494,
        PaperCircuit::S1238,
        PaperCircuit::S3330,
    ];

    /// Circuit name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperCircuit::S1196 => "s1196",
            PaperCircuit::S1238 => "s1238",
            PaperCircuit::S1488 => "s1488",
            PaperCircuit::S1494 => "s1494",
            PaperCircuit::S3330 => "s3330",
        }
    }

    /// Cell count published in Table 1 of the paper.
    pub fn cell_count(self) -> usize {
        match self {
            PaperCircuit::S1196 => 561,
            PaperCircuit::S1238 => 540,
            PaperCircuit::S1488 => 667,
            PaperCircuit::S1494 => 661,
            PaperCircuit::S3330 => 1561,
        }
    }

    /// Number of placement rows used for this circuit throughout the
    /// workspace. The paper does not publish row counts; we use the usual
    /// near-square aspect-ratio rule for standard-cell layouts, which also
    /// leaves enough rows for the Type II row decomposition at up to five
    /// processors.
    pub fn num_rows(self) -> usize {
        match self {
            PaperCircuit::S1196 | PaperCircuit::S1238 => 10,
            PaperCircuit::S1488 | PaperCircuit::S1494 => 11,
            PaperCircuit::S3330 => 16,
        }
    }

    /// (inputs, outputs, flip-flops) of the original ISCAS-89 circuit.
    pub fn io_counts(self) -> (usize, usize, usize) {
        match self {
            PaperCircuit::S1196 => (14, 14, 18),
            PaperCircuit::S1238 => (14, 14, 18),
            PaperCircuit::S1488 => (8, 19, 6),
            PaperCircuit::S1494 => (8, 19, 6),
            PaperCircuit::S3330 => (40, 73, 132),
        }
    }

    /// Parses a paper circuit from its table name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Generator configuration used for the synthetic stand-in.
    pub fn generator_config(self) -> GeneratorConfig {
        let (inputs, outputs, ffs) = self.io_counts();
        // Seed derived from the name so every build sees identical circuits.
        let seed = self
            .name()
            .bytes()
            .fold(0xC0FFEE_u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        GeneratorConfig {
            name: self.name().to_string(),
            num_cells: self.cell_count(),
            num_inputs: inputs,
            num_outputs: outputs,
            num_flip_flops: ffs,
            logic_depth: if self == PaperCircuit::S3330 { 16 } else { 12 },
            avg_fanin: 2.3,
            seed,
        }
    }
}

impl std::fmt::Display for PaperCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the synthetic stand-in for one of the paper's circuits.
pub fn paper_circuit(circuit: PaperCircuit) -> Netlist {
    CircuitGenerator::new(circuit.generator_config()).generate()
}

/// Generates the full five-circuit suite in Table-1 order.
pub fn paper_suite() -> Vec<(PaperCircuit, Netlist)> {
    PaperCircuit::ALL
        .iter()
        .map(|&c| (c, paper_circuit(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_counts_match_the_paper() {
        for c in PaperCircuit::ALL {
            let nl = paper_circuit(c);
            assert_eq!(nl.num_cells(), c.cell_count(), "circuit {c}");
            assert_eq!(nl.name(), c.name());
        }
    }

    #[test]
    fn io_counts_match_iscas89() {
        for c in PaperCircuit::ALL {
            let nl = paper_circuit(c);
            let stats = nl.stats();
            let (i, o, ff) = c.io_counts();
            assert_eq!(stats.inputs, i, "{c} inputs");
            assert_eq!(stats.outputs, o, "{c} outputs");
            assert_eq!(stats.flip_flops, ff, "{c} flip-flops");
        }
    }

    #[test]
    fn suite_is_in_table_order() {
        let suite = paper_suite();
        let names: Vec<_> = suite.iter().map(|(c, _)| c.name()).collect();
        assert_eq!(names, vec!["s1196", "s1488", "s1494", "s1238", "s3330"]);
    }

    #[test]
    fn name_roundtrip() {
        for c in PaperCircuit::ALL {
            assert_eq!(PaperCircuit::from_name(c.name()), Some(c));
        }
        assert_eq!(PaperCircuit::from_name("s9999"), None);
    }

    #[test]
    fn regeneration_is_stable() {
        let a = paper_circuit(PaperCircuit::S1196);
        let b = paper_circuit(PaperCircuit::S1196);
        assert_eq!(a.num_nets(), b.num_nets());
        assert_eq!(a.nets()[0], b.nets()[0]);
    }

    #[test]
    fn rows_leave_room_for_five_partitions() {
        for c in PaperCircuit::ALL {
            assert!(c.num_rows() >= 10, "{c} must have at least 2 rows per processor at p=5");
        }
    }
}
