//! # vlsi-netlist
//!
//! Netlist model for the sime-placement workspace.
//!
//! This crate provides the circuit substrate that the placement cost model
//! (`vlsi-place`) and the Simulated Evolution engine (`sime-core`) operate
//! on:
//!
//! * [`Cell`], [`Net`] and [`Netlist`] — an immutable gate-level circuit graph
//!   with fan-in / fan-out queries,
//! * [`paths`] — extraction of long combinational paths used by the delay cost,
//! * [`generator`] — a deterministic, seeded synthetic circuit generator that
//!   produces ISCAS-89-like circuits (levelised DAGs with realistic fanout and
//!   switching-probability distributions),
//! * [`bench_suite`] — the five named circuits used throughout the paper
//!   (`s1196`, `s1488`, `s1494`, `s1238`, `s3330`) regenerated with the paper's
//!   published cell counts, plus the extended scaling tier (`s5378`, `s9234`,
//!   `s13207`, `s15850`) behind the uniform [`bench_suite::SuiteCircuit`]
//!   handle,
//! * [`mod@format`] — a simple line-oriented text netlist format with a parser and
//!   writer, so circuits can be saved, inspected and reloaded,
//! * [`bookshelf`] — a Bookshelf-style `.nodes`/`.nets` on-disk interchange
//!   (UCLA-format core plus `#` annotations for the attributes the plain
//!   format lacks), so circuits can be dumped, shipped and reloaded instead
//!   of regenerated.
//!
//! The original paper evaluates on ISCAS-89 benchmark circuits. Those netlists
//! are not redistributable here, so [`bench_suite`] builds synthetic stand-ins
//! matched to the published cell counts and to typical ISCAS-89 connectivity
//! statistics (average fanout ≈ 2–3, a small population of high-fanout nets,
//! 10–20 % sequential elements). See `DESIGN.md` §2 (S1) for the substitution
//! argument.

#![warn(missing_docs)]

mod cell;
mod net;
mod netlist;

pub mod bench_suite;
pub mod bookshelf;
pub mod format;
pub mod generator;
pub mod paths;

pub use cell::{Cell, CellId, CellKind};
pub use net::{Net, NetId};
pub use netlist::{Netlist, NetlistBuilder, NetlistError, NetlistStats};

/// Convenience prelude bringing the common netlist types into scope.
pub mod prelude {
    pub use crate::bench_suite::{
        extended_circuit, extended_suite, full_suite, paper_circuit, paper_suite, ExtendedCircuit,
        PaperCircuit, SuiteCircuit,
    };
    pub use crate::bookshelf::{
        load_bookshelf, parse_bookshelf, save_bookshelf, write_bookshelf, BookshelfPair,
    };
    pub use crate::generator::{CircuitGenerator, GeneratorConfig};
    pub use crate::paths::{extract_paths, Path, PathExtractionConfig};
    pub use crate::{Cell, CellId, CellKind, Net, NetId, Netlist, NetlistBuilder};
}
