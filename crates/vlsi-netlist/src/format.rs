//! Line-oriented text netlist format.
//!
//! The format is intentionally simple so that circuits can be dumped,
//! inspected, diffed and reloaded without external tooling:
//!
//! ```text
//! # anything after '#' is a comment
//! circuit <name>
//! cell <name> <kind> <width> <switching_delay> [h<height>] [fixed]
//! ...
//! net <name> <driver_cell> <switching_prob> <sink_cell_1> [<sink_cell_2> ...]
//! ...
//! end
//! ```
//!
//! Cells must be declared before the nets that reference them. `kind` is one
//! of `in`, `out`, `logic`, `ff`, `macro` (see [`CellKind::mnemonic`]). The
//! optional trailing tokens carry the mixed-size attributes: `h<height>` for
//! a multi-row footprint and `fixed` for pre-placed cells. Both are omitted
//! for movable single-row cells, so pure standard-cell circuits serialise
//! byte-identically to the original format.

use crate::{Cell, CellKind, Net, Netlist, NetlistBuilder, NetlistError};
use std::collections::HashMap;

/// Errors produced by [`parse_netlist`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be parsed; carries the 1-based line number and reason.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The netlist body was syntactically valid but semantically invalid.
    Semantic(NetlistError),
    /// Missing `circuit` header or `end` trailer.
    Structure(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Semantic(e) => write!(f, "invalid netlist: {e}"),
            ParseError::Structure(s) => write!(f, "malformed file: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<NetlistError> for ParseError {
    fn from(e: NetlistError) -> Self {
        ParseError::Semantic(e)
    }
}

/// Serialises a netlist to the text format. The output round-trips through
/// [`parse_netlist`].
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("circuit {}\n", netlist.name()));
    for cell in netlist.cells() {
        out.push_str(&format!(
            "cell {} {} {} {}",
            cell.name,
            cell.kind.mnemonic(),
            cell.width,
            cell.switching_delay
        ));
        if cell.height != 1 {
            out.push_str(&format!(" h{}", cell.height));
        }
        if cell.fixed {
            out.push_str(" fixed");
        }
        out.push('\n');
    }
    for net in netlist.nets() {
        out.push_str(&format!(
            "net {} {} {}",
            net.name,
            netlist.cell(net.driver).name,
            net.switching_prob
        ));
        for &s in &net.sinks {
            out.push(' ');
            out.push_str(&netlist.cell(s).name);
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Parses a netlist from the text format.
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseError> {
    let mut name: Option<String> = None;
    let mut builder: Option<NetlistBuilder> = None;
    let mut cell_ids: HashMap<String, crate::CellId> = HashMap::new();
    let mut ended = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if ended {
            return Err(ParseError::Structure(format!(
                "content after `end` at line {}",
                lineno + 1
            )));
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().unwrap_or("");
        let syntax = |reason: &str| ParseError::Syntax {
            line: lineno + 1,
            reason: reason.to_string(),
        };
        match keyword {
            "circuit" => {
                let n = tokens
                    .next()
                    .ok_or_else(|| syntax("missing circuit name"))?;
                name = Some(n.to_string());
                builder = Some(NetlistBuilder::new(n));
            }
            "cell" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax("`cell` before `circuit`"))?;
                let cname = tokens.next().ok_or_else(|| syntax("missing cell name"))?;
                let kind = tokens
                    .next()
                    .and_then(CellKind::from_mnemonic)
                    .ok_or_else(|| syntax("missing or invalid cell kind"))?;
                let width: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax("missing or invalid cell width"))?;
                let delay: f64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax("missing or invalid switching delay"))?;
                let mut cell = Cell::new(cname, kind, width, delay);
                for extra in tokens.by_ref() {
                    if extra == "fixed" {
                        cell.fixed = true;
                    } else if let Some(h) = extra.strip_prefix('h') {
                        cell.height =
                            h.parse().ok().filter(|&h| h >= 1).ok_or_else(|| {
                                syntax(&format!("invalid height token `{extra}`"))
                            })?;
                    } else {
                        return Err(syntax(&format!("unexpected cell token `{extra}`")));
                    }
                }
                let id = b.add_cell(cell);
                cell_ids.insert(cname.to_string(), id);
            }
            "net" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax("`net` before `circuit`"))?;
                let nname = tokens.next().ok_or_else(|| syntax("missing net name"))?;
                let driver_name = tokens.next().ok_or_else(|| syntax("missing driver cell"))?;
                let driver = *cell_ids
                    .get(driver_name)
                    .ok_or_else(|| syntax(&format!("unknown driver cell `{driver_name}`")))?;
                let sprob: f64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax("missing or invalid switching probability"))?;
                let mut sinks = Vec::new();
                for s in tokens {
                    let id = *cell_ids
                        .get(s)
                        .ok_or_else(|| syntax(&format!("unknown sink cell `{s}`")))?;
                    sinks.push(id);
                }
                if sinks.is_empty() {
                    return Err(syntax("net has no sinks"));
                }
                b.add_net(Net::new(nname, driver, sinks, sprob));
            }
            "end" => {
                ended = true;
            }
            other => {
                return Err(syntax(&format!("unknown keyword `{other}`")));
            }
        }
    }

    if name.is_none() {
        return Err(ParseError::Structure("missing `circuit` header".into()));
    }
    if !ended {
        return Err(ParseError::Structure("missing `end` trailer".into()));
    }
    Ok(builder.expect("builder exists when name exists").build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CircuitGenerator, GeneratorConfig};

    const SAMPLE: &str = "\
# a tiny sample circuit
circuit sample
cell a in 1 0.0
cell b logic 2 0.1
cell c out 1 0.0
net n1 a 0.5 b
net n2 b 0.25 c
end
";

    #[test]
    fn parses_the_sample() {
        let nl = parse_netlist(SAMPLE).unwrap();
        assert_eq!(nl.name(), "sample");
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.num_nets(), 2);
        let b = nl.cell_by_name("b").unwrap();
        assert_eq!(nl.cell(b).width, 2);
        assert_eq!(nl.net(nl.net_by_name("n2").unwrap()).switching_prob, 0.25);
    }

    #[test]
    fn roundtrips_generated_circuits() {
        let cfg = GeneratorConfig::sized("roundtrip", 150, 11);
        let original = CircuitGenerator::new(cfg).generate();
        let text = write_netlist(&original);
        let parsed = parse_netlist(&text).unwrap();
        assert_eq!(parsed.num_cells(), original.num_cells());
        assert_eq!(parsed.num_nets(), original.num_nets());
        for (a, b) in original.cells().iter().zip(parsed.cells().iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.width, b.width);
        }
        for (a, b) in original.nets().iter().zip(parsed.nets().iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.driver, b.driver);
            assert_eq!(a.sinks, b.sinks);
        }
    }

    #[test]
    fn mixed_size_attributes_roundtrip() {
        let text = "circuit m\n\
                    cell pad in 1 0 fixed\n\
                    cell ram macro 20 0.2 h3 fixed\n\
                    cell g logic 2 0.1\n\
                    net n pad 0.5 ram g\n\
                    end\n";
        let nl = parse_netlist(text).unwrap();
        let pad = nl.cell(nl.cell_by_name("pad").unwrap());
        assert!(pad.fixed);
        assert_eq!(pad.height, 1);
        let ram = nl.cell(nl.cell_by_name("ram").unwrap());
        assert_eq!(ram.kind, CellKind::Macro);
        assert_eq!(ram.height, 3);
        assert!(ram.fixed);
        assert!(nl.cell(nl.cell_by_name("g").unwrap()).is_movable());
        // The writer reproduces the attributes and the result re-parses to
        // the same circuit (write ∘ parse fixpoint).
        let written = write_netlist(&nl);
        assert!(
            written.contains("cell ram macro 20 0.2 h3 fixed\n"),
            "{written}"
        );
        assert_eq!(written, write_netlist(&parse_netlist(&written).unwrap()));

        let bad_height = "circuit m\ncell ram macro 20 0.2 h0\nend\n";
        assert!(matches!(
            parse_netlist(bad_height).unwrap_err(),
            ParseError::Syntax { line: 2, .. }
        ));
        let bad_token = "circuit m\ncell g logic 2 0.1 movable\nend\n";
        assert!(matches!(
            parse_netlist(bad_token).unwrap_err(),
            ParseError::Syntax { line: 2, .. }
        ));
    }

    #[test]
    fn reports_unknown_cell() {
        let bad = "circuit x\ncell a in 1 0.0\nnet n a 0.5 missing\nend\n";
        let err = parse_netlist(bad).unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 3, .. }), "{err}");
    }

    #[test]
    fn reports_missing_header_and_trailer() {
        assert!(matches!(
            parse_netlist("cell a in 1 0.0\nend\n").unwrap_err(),
            ParseError::Syntax { .. }
        ));
        assert!(matches!(
            parse_netlist("").unwrap_err(),
            ParseError::Structure(_)
        ));
        assert!(matches!(
            parse_netlist("circuit x\n").unwrap_err(),
            ParseError::Structure(_)
        ));
    }

    #[test]
    fn rejects_content_after_end() {
        let bad = "circuit x\ncell a in 1 0.0\nend\ncell b in 1 0.0\n";
        assert!(matches!(
            parse_netlist(bad).unwrap_err(),
            ParseError::Structure(_)
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# leading comment\ncircuit c # trailing\n cell a in 1 0.0\ncell b out 1 0.0\nnet n a 0.1 b\nend\n";
        let nl = parse_netlist(text).unwrap();
        assert_eq!(nl.num_cells(), 2);
    }

    #[test]
    fn semantic_errors_are_propagated() {
        // duplicate cell names pass the parser but fail netlist validation
        let bad = "circuit x\ncell a in 1 0.0\ncell a in 1 0.0\nend\n";
        assert!(matches!(
            parse_netlist(bad).unwrap_err(),
            ParseError::Semantic(NetlistError::DuplicateCellName(_))
        ));
    }
}
