//! Round-trip properties of the two on-disk circuit representations: the
//! line-oriented text format (`vlsi_netlist::format`) and the
//! Bookshelf-style `.nodes`/`.nets` interchange (`vlsi_netlist::bookshelf`).
//!
//! The central property: `parse ∘ write` is the identity on every circuit
//! the generator can produce — same name, bitwise-equal cell table (name,
//! kind, width, switching delay) and net table (name, driver, sinks,
//! switching probability). A second family of properties pins the error
//! contract: parse errors carry correct 1-based line numbers no matter how
//! much padding precedes the offending line.

use proptest::prelude::*;
use vlsi_netlist::bench_suite::SuiteCircuit;
use vlsi_netlist::bookshelf::{
    netlists_identical, parse_bookshelf, parse_pl, parse_scl, write_bookshelf, write_pl, write_scl,
    BookshelfError, BookshelfFile, CoreRow, PlEntry,
};
use vlsi_netlist::format::{parse_netlist, write_netlist, ParseError};
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig, MixedSizeSpec};
use vlsi_netlist::Netlist;

/// Strategy over generator configurations spanning tiny to mid-size
/// circuits with varied I/O mixes and connectivity.
fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        40usize..300,
        4usize..20,
        4usize..20,
        2usize..30,
        3usize..12,
        any::<u64>(),
    )
        .prop_map(
            |(logic, inputs, outputs, ffs, depth, seed)| GeneratorConfig {
                name: format!("rt_{seed}"),
                num_cells: logic + inputs + outputs + ffs + depth + 2,
                num_inputs: inputs,
                num_outputs: outputs,
                num_flip_flops: ffs,
                logic_depth: depth,
                avg_fanin: 2.2,
                seed,
                mixed: None,
            },
        )
}

/// [`arb_config`] with random mixed-size additions layered on top: a macro
/// block mix (possibly empty), varied footprint heights and an optional pad
/// ring, so every fixed/macro combination the generator can produce is on
/// the round-trip sweep.
fn arb_mixed_config() -> impl Strategy<Value = GeneratorConfig> {
    (arb_config(), 0usize..5, 2u32..6, any::<bool>()).prop_map(
        |(cfg, num_macros, macro_height, pad_ring)| {
            cfg.with_mixed(MixedSizeSpec {
                num_macros,
                macro_height,
                pad_ring,
            })
        },
    )
}

/// Strategy over raw `.pl` entry lists: varied identifier stems, signed
/// coordinates (pads legitimately sit at negative x) and a random `/FIXED`
/// mix. Names are made unique by index so entry-level equality is
/// meaningful.
fn arb_pl_entries() -> impl Strategy<Value = Vec<PlEntry>> {
    const STEMS: [&str; 4] = ["g", "pad_", "mb", "ff"];
    prop::collection::vec(
        (
            0usize..STEMS.len(),
            -100_000i64..100_000,
            -64i64..4096,
            any::<bool>(),
        ),
        0..60,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (stem, x, y, fixed))| PlEntry {
                name: format!("{}{i}", STEMS[stem]),
                x,
                y,
                fixed,
            })
            .collect()
    })
}

/// Strategy over raw `.scl` row lists with varied geometry.
fn arb_scl_rows() -> impl Strategy<Value = Vec<CoreRow>> {
    prop::collection::vec(
        (
            -1_000i64..100_000,
            1i64..64,
            1i64..4,
            -100i64..100,
            1i64..1_000_000,
        ),
        0..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(
                |(coordinate, height, sitewidth, subrow_origin, num_sites)| CoreRow {
                    coordinate,
                    height,
                    sitewidth,
                    subrow_origin,
                    num_sites,
                },
            )
            .collect()
    })
}

fn generate(cfg: &GeneratorConfig) -> Netlist {
    CircuitGenerator::new(cfg.clone()).generate()
}

/// Field-level identity check shared by both formats (stricter failure
/// messages than a bulk equality).
fn assert_identical(original: &Netlist, parsed: &Netlist) {
    assert_eq!(original.name(), parsed.name());
    assert_eq!(original.num_cells(), parsed.num_cells());
    assert_eq!(original.num_nets(), parsed.num_nets());
    for (a, b) in original.cells().iter().zip(parsed.cells().iter()) {
        assert_eq!(a, b, "cell mismatch");
    }
    for (a, b) in original.nets().iter().zip(parsed.nets().iter()) {
        assert_eq!(a, b, "net mismatch");
    }
    assert!(netlists_identical(original, parsed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// `parse_netlist ∘ write_netlist` is the identity on generated circuits.
    #[test]
    fn text_format_roundtrips(cfg in arb_config()) {
        let original = generate(&cfg);
        let parsed = parse_netlist(&write_netlist(&original)).unwrap();
        assert_identical(&original, &parsed);
    }

    /// `parse_bookshelf ∘ write_bookshelf` is the identity on generated
    /// circuits.
    #[test]
    fn bookshelf_roundtrips(cfg in arb_config()) {
        let original = generate(&cfg);
        let pair = write_bookshelf(&original);
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert_identical(&original, &parsed);
    }

    /// Both interchange surfaces stay lossless on *mixed-size* circuits:
    /// macro kinds, multi-row footprints and `fixed` flags survive
    /// `parse ∘ write` for every macro-count/height/pad-ring combination.
    #[test]
    fn mixed_size_circuits_roundtrip_through_both_formats(cfg in arb_mixed_config()) {
        let original = generate(&cfg);
        let pair = write_bookshelf(&original);
        assert_identical(&original, &parse_bookshelf(&pair.nodes, &pair.nets).unwrap());
        assert_identical(&original, &parse_netlist(&write_netlist(&original)).unwrap());
    }

    /// `parse_pl ∘ write_pl` is the identity on arbitrary placements, and
    /// because coordinates serialise as integers the *text* round-trips
    /// byte-identically too.
    #[test]
    fn pl_roundtrips(entries in arb_pl_entries()) {
        let text = write_pl(&entries);
        let parsed = parse_pl(&text).unwrap();
        prop_assert_eq!(&parsed, &entries);
        prop_assert_eq!(write_pl(&parsed), text);
    }

    /// `parse_scl ∘ write_scl` is the identity on arbitrary row geometries,
    /// byte-identically at the text level.
    #[test]
    fn scl_roundtrips(rows in arb_scl_rows()) {
        let text = write_scl(&rows);
        let parsed = parse_scl(&text).unwrap();
        prop_assert_eq!(&parsed, &rows);
        prop_assert_eq!(write_scl(&parsed), text);
    }

    /// A `.pl` dump of a mixed-size circuit — fixed flags taken from the
    /// actual cell table, movable cells at generator-chosen coordinates —
    /// reloads to the same entries, byte-identically at the text level.
    #[test]
    fn pl_from_mixed_circuits_roundtrips(cfg in arb_mixed_config()) {
        let netlist = generate(&cfg);
        let entries: Vec<PlEntry> = netlist
            .cells()
            .iter()
            .enumerate()
            .map(|(i, cell)| PlEntry {
                name: cell.name.clone(),
                // Synthetic but deterministic coordinates: the property under
                // test is serialisation, not placement legality.
                x: (i as i64) * 7 - 40,
                y: ((i as i64) % 12) * 8,
                fixed: cell.fixed,
            })
            .collect();
        let text = write_pl(&entries);
        let parsed = parse_pl(&text).unwrap();
        prop_assert_eq!(&parsed, &entries);
        prop_assert_eq!(write_pl(&parsed), text);
    }

    /// Text-format parse errors report the exact 1-based line of the
    /// offending line, regardless of how many comment/blank padding lines
    /// precede it.
    #[test]
    fn text_parse_errors_carry_one_based_line_numbers(padding in 0usize..40) {
        let mut text = String::from("circuit lines\n");
        for i in 0..padding {
            // Alternate blank and comment lines — both must count.
            if i % 2 == 0 {
                text.push('\n');
            } else {
                text.push_str("# padding\n");
            }
        }
        text.push_str("cell a in 1 0.0\n");
        text.push_str("net n1 a 0.5 ghost\n"); // unknown sink cell
        text.push_str("end\n");
        let expected_line = 1 + padding + 2;
        match parse_netlist(&text).unwrap_err() {
            ParseError::Syntax { line, reason } => {
                prop_assert_eq!(line, expected_line);
                prop_assert!(reason.contains("ghost"), "{}", reason);
            }
            other => prop_assert!(false, "expected a syntax error, got {:?}", other),
        }
    }

    /// Bookshelf parse errors name the right file and the exact 1-based
    /// line within it.
    #[test]
    fn bookshelf_parse_errors_carry_file_and_line(padding in 0usize..40) {
        let nodes = "UCLA nodes 1.0\n# circuit pad\n    a 1 1 # logic 0.1\n    b 1 1 # logic 0.1\n";
        let mut nets = String::from("UCLA nets 1.0\n");
        for _ in 0..padding {
            nets.push_str("# padding\n");
        }
        nets.push_str("NetDegree : 2 n0 # 0.5\n");
        nets.push_str("    a O\n");
        nets.push_str("    ghost I\n"); // unknown cell
        let expected_line = 1 + padding + 3;
        match parse_bookshelf(nodes, &nets).unwrap_err() {
            BookshelfError::Syntax { file, line, reason } => {
                prop_assert_eq!(file, BookshelfFile::Nets);
                prop_assert_eq!(line, expected_line);
                prop_assert!(reason.contains("ghost"), "{}", reason);
            }
            other => prop_assert!(false, "expected a syntax error, got {:?}", other),
        }
    }
}

/// The acceptance gate of the scenario-matrix PR: every suite circuit (both
/// tiers, s1196 through s15850) dumps to the Bookshelf pair and reloads to
/// an identical in-memory netlist.
#[test]
fn every_suite_circuit_roundtrips_through_bookshelf() {
    for circuit in SuiteCircuit::ALL {
        let original = circuit.generate();
        let pair = write_bookshelf(&original);
        let parsed =
            parse_bookshelf(&pair.nodes, &pair.nets).unwrap_or_else(|e| panic!("{circuit}: {e}"));
        assert!(
            netlists_identical(&original, &parsed),
            "{circuit}: bookshelf round-trip is not the identity"
        );
    }
}

/// The generator and the streaming interchange path scale to 100k+ cells: a
/// mixed-size circuit two orders of magnitude beyond the paper tier is
/// generated, streamed to disk through the `BufWriter`-backed `save_*`
/// functions (the file text is never materialised in memory), streamed back,
/// and must reload to an identical netlist with byte-identical files on a
/// second dump.
#[test]
fn hundred_thousand_cell_circuit_streams_through_the_layout_files() {
    use vlsi_netlist::bookshelf::PlEntry;
    use vlsi_netlist::bookshelf::{layout_paths, load_bookshelf, load_pl, save_bookshelf, save_pl};

    let cfg = GeneratorConfig::sized("synth100k", 100_000, 7).with_mixed(MixedSizeSpec {
        num_macros: 16,
        macro_height: 4,
        pad_ring: true,
    });
    let original = CircuitGenerator::new(cfg).generate();
    assert!(
        original.num_cells() >= 100_000,
        "generator fell short of the 100k tier"
    );
    assert!(
        original.stats().fixed_cells > 0,
        "the mixed spec must pin pads and macros"
    );

    let dir = std::env::temp_dir().join(format!("sime_large_layout_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("synth100k");
    let paths = layout_paths(&stem);

    save_bookshelf(&original, &stem).unwrap();
    let reloaded = load_bookshelf(&stem).unwrap();
    assert!(netlists_identical(&original, &reloaded));

    // A `.pl` for the whole 100k-cell circuit streams the same way.
    let entries: Vec<PlEntry> = original
        .cells()
        .iter()
        .enumerate()
        .map(|(i, cell)| PlEntry {
            name: cell.name.clone(),
            x: (i as i64) % 4096,
            y: ((i as i64) / 4096) * 8,
            fixed: cell.fixed,
        })
        .collect();
    save_pl(&entries, &paths.pl).unwrap();
    assert_eq!(load_pl(&paths.pl).unwrap(), entries);

    // Determinism at the byte level: a second dump of the reloaded netlist
    // produces byte-identical files.
    let stem2 = dir.join("synth100k_redump");
    save_bookshelf(&reloaded, &stem2).unwrap();
    let paths2 = layout_paths(&stem2);
    assert_eq!(
        std::fs::read(&paths.nodes).unwrap(),
        std::fs::read(&paths2.nodes).unwrap(),
        "re-dumped .nodes differs"
    );
    assert_eq!(
        std::fs::read(&paths.nets).unwrap(),
        std::fs::read(&paths2.nets).unwrap(),
        "re-dumped .nets differs"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Same gate for the text format, so both interchange surfaces stay lossless
/// as the suite grows.
#[test]
fn every_suite_circuit_roundtrips_through_the_text_format() {
    for circuit in SuiteCircuit::ALL {
        let original = circuit.generate();
        let parsed =
            parse_netlist(&write_netlist(&original)).unwrap_or_else(|e| panic!("{circuit}: {e}"));
        assert!(
            netlists_identical(&original, &parsed),
            "{circuit}: text round-trip is not the identity"
        );
    }
}
