//! Round-trip properties of the two on-disk circuit representations: the
//! line-oriented text format (`vlsi_netlist::format`) and the
//! Bookshelf-style `.nodes`/`.nets` interchange (`vlsi_netlist::bookshelf`).
//!
//! The central property: `parse ∘ write` is the identity on every circuit
//! the generator can produce — same name, bitwise-equal cell table (name,
//! kind, width, switching delay) and net table (name, driver, sinks,
//! switching probability). A second family of properties pins the error
//! contract: parse errors carry correct 1-based line numbers no matter how
//! much padding precedes the offending line.

use proptest::prelude::*;
use vlsi_netlist::bench_suite::SuiteCircuit;
use vlsi_netlist::bookshelf::{
    netlists_identical, parse_bookshelf, write_bookshelf, BookshelfError, BookshelfFile,
};
use vlsi_netlist::format::{parse_netlist, write_netlist, ParseError};
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_netlist::Netlist;

/// Strategy over generator configurations spanning tiny to mid-size
/// circuits with varied I/O mixes and connectivity.
fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        40usize..300,
        4usize..20,
        4usize..20,
        2usize..30,
        3usize..12,
        any::<u64>(),
    )
        .prop_map(
            |(logic, inputs, outputs, ffs, depth, seed)| GeneratorConfig {
                name: format!("rt_{seed}"),
                num_cells: logic + inputs + outputs + ffs + depth + 2,
                num_inputs: inputs,
                num_outputs: outputs,
                num_flip_flops: ffs,
                logic_depth: depth,
                avg_fanin: 2.2,
                seed,
            },
        )
}

fn generate(cfg: &GeneratorConfig) -> Netlist {
    CircuitGenerator::new(cfg.clone()).generate()
}

/// Field-level identity check shared by both formats (stricter failure
/// messages than a bulk equality).
fn assert_identical(original: &Netlist, parsed: &Netlist) {
    assert_eq!(original.name(), parsed.name());
    assert_eq!(original.num_cells(), parsed.num_cells());
    assert_eq!(original.num_nets(), parsed.num_nets());
    for (a, b) in original.cells().iter().zip(parsed.cells().iter()) {
        assert_eq!(a, b, "cell mismatch");
    }
    for (a, b) in original.nets().iter().zip(parsed.nets().iter()) {
        assert_eq!(a, b, "net mismatch");
    }
    assert!(netlists_identical(original, parsed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// `parse_netlist ∘ write_netlist` is the identity on generated circuits.
    #[test]
    fn text_format_roundtrips(cfg in arb_config()) {
        let original = generate(&cfg);
        let parsed = parse_netlist(&write_netlist(&original)).unwrap();
        assert_identical(&original, &parsed);
    }

    /// `parse_bookshelf ∘ write_bookshelf` is the identity on generated
    /// circuits.
    #[test]
    fn bookshelf_roundtrips(cfg in arb_config()) {
        let original = generate(&cfg);
        let pair = write_bookshelf(&original);
        let parsed = parse_bookshelf(&pair.nodes, &pair.nets).unwrap();
        assert_identical(&original, &parsed);
    }

    /// Text-format parse errors report the exact 1-based line of the
    /// offending line, regardless of how many comment/blank padding lines
    /// precede it.
    #[test]
    fn text_parse_errors_carry_one_based_line_numbers(padding in 0usize..40) {
        let mut text = String::from("circuit lines\n");
        for i in 0..padding {
            // Alternate blank and comment lines — both must count.
            if i % 2 == 0 {
                text.push('\n');
            } else {
                text.push_str("# padding\n");
            }
        }
        text.push_str("cell a in 1 0.0\n");
        text.push_str("net n1 a 0.5 ghost\n"); // unknown sink cell
        text.push_str("end\n");
        let expected_line = 1 + padding + 2;
        match parse_netlist(&text).unwrap_err() {
            ParseError::Syntax { line, reason } => {
                prop_assert_eq!(line, expected_line);
                prop_assert!(reason.contains("ghost"), "{}", reason);
            }
            other => prop_assert!(false, "expected a syntax error, got {:?}", other),
        }
    }

    /// Bookshelf parse errors name the right file and the exact 1-based
    /// line within it.
    #[test]
    fn bookshelf_parse_errors_carry_file_and_line(padding in 0usize..40) {
        let nodes = "UCLA nodes 1.0\n# circuit pad\n    a 1 1 # logic 0.1\n    b 1 1 # logic 0.1\n";
        let mut nets = String::from("UCLA nets 1.0\n");
        for _ in 0..padding {
            nets.push_str("# padding\n");
        }
        nets.push_str("NetDegree : 2 n0 # 0.5\n");
        nets.push_str("    a O\n");
        nets.push_str("    ghost I\n"); // unknown cell
        let expected_line = 1 + padding + 3;
        match parse_bookshelf(nodes, &nets).unwrap_err() {
            BookshelfError::Syntax { file, line, reason } => {
                prop_assert_eq!(file, BookshelfFile::Nets);
                prop_assert_eq!(line, expected_line);
                prop_assert!(reason.contains("ghost"), "{}", reason);
            }
            other => prop_assert!(false, "expected a syntax error, got {:?}", other),
        }
    }
}

/// The acceptance gate of the scenario-matrix PR: every suite circuit (both
/// tiers, s1196 through s15850) dumps to the Bookshelf pair and reloads to
/// an identical in-memory netlist.
#[test]
fn every_suite_circuit_roundtrips_through_bookshelf() {
    for circuit in SuiteCircuit::ALL {
        let original = circuit.generate();
        let pair = write_bookshelf(&original);
        let parsed =
            parse_bookshelf(&pair.nodes, &pair.nets).unwrap_or_else(|e| panic!("{circuit}: {e}"));
        assert!(
            netlists_identical(&original, &parsed),
            "{circuit}: bookshelf round-trip is not the identity"
        );
    }
}

/// Same gate for the text format, so both interchange surfaces stay lossless
/// as the suite grows.
#[test]
fn every_suite_circuit_roundtrips_through_the_text_format() {
    for circuit in SuiteCircuit::ALL {
        let original = circuit.generate();
        let parsed =
            parse_netlist(&write_netlist(&original)).unwrap_or_else(|e| panic!("{circuit}: {e}"));
        assert!(
            netlists_identical(&original, &parsed),
            "{circuit}: text round-trip is not the identity"
        );
    }
}
