//! Property-based tests for the netlist substrate.

use proptest::prelude::*;
use vlsi_netlist::format::{parse_netlist, write_netlist};
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_netlist::paths::{extract_paths, PathExtractionConfig};
use vlsi_netlist::{CellKind, Netlist};

/// Strategy producing a wide range of generator configurations.
fn generator_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        60usize..400,
        4usize..16,
        4usize..16,
        2usize..24,
        4usize..14,
        any::<u64>(),
    )
        .prop_map(|(cells, inputs, outputs, ffs, depth, seed)| {
            let num_cells = cells + inputs + outputs + ffs + depth + 4;
            GeneratorConfig {
                name: format!("prop_{seed}"),
                num_cells,
                num_inputs: inputs,
                num_outputs: outputs,
                num_flip_flops: ffs,
                logic_depth: depth,
                avg_fanin: 2.2,
                seed,
                mixed: None,
            }
        })
}

fn generate(cfg: &GeneratorConfig) -> Netlist {
    CircuitGenerator::new(cfg.clone()).generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generator always produces a structurally valid netlist with the
    /// requested number of cells and I/O population.
    #[test]
    fn generator_respects_configuration(cfg in generator_config()) {
        let nl = generate(&cfg);
        prop_assert_eq!(nl.num_cells(), cfg.num_cells);
        let stats = nl.stats();
        prop_assert_eq!(stats.inputs, cfg.num_inputs);
        prop_assert_eq!(stats.outputs, cfg.num_outputs);
        prop_assert_eq!(stats.flip_flops, cfg.num_flip_flops);
        prop_assert!(stats.nets > 0);
    }

    /// Fan-in / fan-out tables derived at build time agree with the raw nets.
    #[test]
    fn connectivity_tables_are_consistent(cfg in generator_config()) {
        let nl = generate(&cfg);
        for net_id in nl.net_ids() {
            let net = nl.net(net_id);
            prop_assert!(nl.nets_driven_by(net.driver).contains(&net_id));
            for &s in &net.sinks {
                prop_assert!(nl.nets_feeding(s).contains(&net_id));
            }
        }
        for cell_id in nl.cell_ids() {
            for &n in nl.nets_driven_by(cell_id) {
                prop_assert_eq!(nl.net(n).driver, cell_id);
            }
            for &n in nl.nets_feeding(cell_id) {
                prop_assert!(nl.net(n).sinks.contains(&cell_id));
            }
        }
    }

    /// Primary inputs never have fan-in; primary outputs never drive nets.
    #[test]
    fn io_cells_have_one_sided_connectivity(cfg in generator_config()) {
        let nl = generate(&cfg);
        for cell_id in nl.cell_ids() {
            match nl.cell(cell_id).kind {
                CellKind::Input => prop_assert!(nl.nets_feeding(cell_id).is_empty()),
                CellKind::Output => prop_assert!(nl.nets_driven_by(cell_id).is_empty()),
                _ => {}
            }
        }
    }

    /// The text format round-trips every generated circuit exactly.
    #[test]
    fn format_roundtrip(cfg in generator_config()) {
        let nl = generate(&cfg);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("roundtrip parse");
        prop_assert_eq!(back.num_cells(), nl.num_cells());
        prop_assert_eq!(back.num_nets(), nl.num_nets());
        for (a, b) in nl.nets().iter().zip(back.nets().iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.driver, b.driver);
            prop_assert_eq!(&a.sinks, &b.sinks);
            prop_assert!((a.switching_prob - b.switching_prob).abs() < 1e-12);
        }
    }

    /// Extracted paths are well-formed: consecutive cells are really connected
    /// by the recorded net, paths start at sources and end at sinks.
    #[test]
    fn extracted_paths_are_wellformed(cfg in generator_config()) {
        let nl = generate(&cfg);
        let paths = extract_paths(&nl, &PathExtractionConfig::default());
        for p in &paths {
            prop_assert_eq!(p.nets.len() + 1, p.cells.len());
            prop_assert!(nl.cell(p.cells[0]).kind.is_path_source());
            prop_assert!(nl.cell(*p.cells.last().unwrap()).kind.is_path_sink());
            for (i, &net) in p.nets.iter().enumerate() {
                let n = nl.net(net);
                prop_assert_eq!(n.driver, p.cells[i]);
                prop_assert!(n.sinks.contains(&p.cells[i + 1]));
            }
            // No cell repeats within a path (paths are simple).
            let mut cells = p.cells.clone();
            cells.sort_unstable();
            cells.dedup();
            prop_assert_eq!(cells.len(), p.cells.len());
        }
    }

    /// Generation is a pure function of the configuration.
    #[test]
    fn generation_is_deterministic(cfg in generator_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(write_netlist(&a), write_netlist(&b));
    }
}
