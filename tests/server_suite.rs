//! The server's correctness oracle: every checked-in golden scenario,
//! replayed through an **in-process** `sime-server` at client concurrencies
//! 1, 2, 4 and 8, must produce a `TrajectoryFingerprint` **bitwise
//! identical** to the batch path's golden file — regardless of how the jobs
//! interleave on the shared pool, which client submitted them, or how deep
//! the admission queue got.
//!
//! The comparison runs through `sime_parallel::batch::check_goldens`, the
//! same gate `scenario_matrix --check` uses, so a missing golden directory
//! or an empty intersection is a hard failure here too — the suite can never
//! rot into a green no-op.

use sime_parallel::batch::{check_goldens, golden_subset, TrajectoryFingerprint};
use sime_parallel::JobSpec;
use sime_server::{Event, Request, Server, ServerConfig, Session, SubmitRequest};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Generous per-job ceiling; the whole subset runs in seconds.
const EVENT_TIMEOUT: Duration = Duration::from_secs(300);

fn golden_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs the full golden subset through one server with `clients` concurrent
/// sessions (jobs dealt round-robin), returning scenario id → fingerprint.
fn run_subset_through_server(clients: usize) -> BTreeMap<String, TrajectoryFingerprint> {
    let server = Server::new(ServerConfig {
        workers: 2,
        max_active: 3, // below the job count so the admission queue engages
        max_queue: 64,
        max_request_bytes: 64 * 1024,
    });
    let specs = golden_subset();
    let results: Mutex<BTreeMap<String, TrajectoryFingerprint>> = Mutex::new(BTreeMap::new());

    std::thread::scope(|scope| {
        for client in 0..clients {
            let server = Arc::clone(&server);
            let results = &results;
            let mine: Vec<(usize, sime_parallel::ScenarioSpec)> = specs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == client)
                .map(|(i, spec)| (i, spec.clone()))
                .collect();
            scope.spawn(move || {
                let session = Session::new(server);
                // Submit everything up front over the wire protocol, then
                // drain: forces real queueing and interleaved completion.
                for (i, spec) in &mine {
                    let request = Request::Submit(SubmitRequest {
                        id: format!("c{client}-j{i}"),
                        spec: JobSpec::batch(spec.clone()),
                    });
                    session.handle_line(&request.render());
                }
                let mut done = 0;
                while done < mine.len() {
                    let event = session
                        .next_event(EVENT_TIMEOUT)
                        .expect("server went quiet with jobs outstanding");
                    match event {
                        Event::Done { fingerprint, .. } => {
                            let (spec, fp) = TrajectoryFingerprint::parse_text(&fingerprint)
                                .expect("done event carries a parsable fingerprint");
                            results.lock().unwrap().insert(spec.id(), fp);
                            done += 1;
                        }
                        Event::Accepted { .. } | Event::Progress { .. } => {}
                        other => panic!("unexpected event for client {client}: {other:?}"),
                    }
                }
            });
        }
    });

    // Leak checks: every slot returned, nothing stuck in any lane.
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.active, 0, "leaked active slot");
    assert_eq!(stats.queued, 0, "leaked queued job");
    assert_eq!(stats.finished as usize, specs.len());
    assert_eq!(server.pool().queued_jobs(), 0, "leaked work in a pool lane");
    results.into_inner().unwrap()
}

#[test]
fn golden_subset_is_bitwise_stable_through_the_server_at_every_client_concurrency() {
    let dir = golden_dir();
    let expected = golden_subset().len();
    for clients in [1usize, 2, 4, 8] {
        let by_id = run_subset_through_server(clients);
        assert_eq!(by_id.len(), expected, "{clients} clients: lost a scenario");
        let check = check_goldens(&dir, &by_id);
        assert!(
            check.passed(),
            "{clients} clients: server fingerprints diverged from the goldens:\n{}",
            check.failures.join("\n")
        );
        assert_eq!(
            check.checked, expected,
            "{clients} clients: some scenario had no golden pinned — \
             the oracle must cover the whole subset"
        );
    }
}

#[test]
fn progress_stream_samples_the_fingerprint_checkpoints() {
    let server = Server::new(ServerConfig {
        workers: 2,
        max_active: 1,
        max_queue: 4,
        max_request_bytes: 64 * 1024,
    });
    let spec = golden_subset()
        .into_iter()
        .find(|s| s.iterations >= 5)
        .expect("subset has a scenario with enough iterations");
    let iterations = spec.iterations;
    let session = Session::new(Arc::clone(&server));
    session.request(Request::Submit(SubmitRequest {
        id: "progress".into(),
        spec: JobSpec::batch(spec),
    }));
    let events = session
        .wait_for_terminal("progress", EVENT_TIMEOUT)
        .expect("job reaches a terminal event");
    let progressed: Vec<usize> = events
        .iter()
        .filter_map(|event| match event {
            Event::Progress { iteration, .. } => Some(*iteration),
            _ => None,
        })
        .collect();
    let expected = sime_parallel::batch::checkpoint_iterations(iterations);
    assert_eq!(
        progressed, expected,
        "progress events must sample exactly the fingerprint checkpoints"
    );
    assert!(
        matches!(events.last(), Some(Event::Done { .. })),
        "job must finish Done"
    );
    server.drain();
}
