//! The determinism-stress layer of the persistent-worker epoch scheduler.
//!
//! The golden suite (`tests/golden_suite.rs`) pins the search trajectories;
//! this suite hammers the *scheduler* underneath them. Every checked-in
//! golden is replayed across a worker-count × eval-chunk grid on the
//! threaded backend — including deliberately oversubscribed pools (more OS
//! workers than the host has cores, and far more workers than simulated
//! ranks) — and must reproduce its pinned fingerprint to the bit. A
//! proptest family additionally throws random epoch schedules (random task
//! counts, nested batches from worker threads, random pool sizes) at
//! `cluster_sim::comm::WorkerPool` and checks the merged results against an
//! inline oracle.
//!
//! Two grid tiers keep tier-1 wall-clock sane:
//!
//! * default — a pruned representative sub-grid (one undersubscribed, one
//!   balanced, one oversubscribed cell per golden);
//! * `SIME_STRESS_FULL=1` — the full {1,2,3,4,8} × {1,2,4,7} grid, run by
//!   the release-mode `determinism-stress` CI job.

use cluster_sim::comm::WorkerPool;
use proptest::prelude::*;
use sime_parallel::batch::{BatchDriver, ScenarioSpec, TrajectoryFingerprint};
use std::path::PathBuf;
use std::sync::Arc;

/// The full stress grid of the tentpole: every worker count crossed with
/// every chunk count, so chunk boundaries land on, under and over the
/// worker count, and the workers=8 column oversubscribes any CI core count.
const STRESS_WORKERS: [usize; 5] = [1, 2, 3, 4, 8];
const STRESS_CHUNKS: [usize; 4] = [1, 2, 4, 7];

/// The pruned default sub-grid: an undersubscribed cell, a balanced cell
/// with mid chunking, and a fully oversubscribed cell with the oddest chunk
/// count. Covers every interesting regime at ~1/7 the full-grid cost.
const PRUNED_GRID: [(usize, usize); 3] = [(1, 2), (3, 4), (8, 7)];

fn full_grid() -> bool {
    std::env::var("SIME_STRESS_FULL").is_ok_and(|v| v == "1")
}

fn stress_grid() -> Vec<(usize, usize)> {
    if full_grid() {
        STRESS_WORKERS
            .iter()
            .flat_map(|&w| STRESS_CHUNKS.iter().map(move |&c| (w, c)))
            .collect()
    } else {
        PRUNED_GRID.to_vec()
    }
}

fn load_goldens() -> Vec<(String, ScenarioSpec, TrajectoryFingerprint)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "golden"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).unwrap();
            let (spec, fingerprint) = TrajectoryFingerprint::parse_text(&text)
                .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                spec,
                fingerprint,
            )
        })
        .collect()
}

#[test]
fn goldens_replay_bitwise_across_the_worker_chunk_stress_grid() {
    let grid = stress_grid();
    let mut driver = BatchDriver::new();
    for (file, spec, pinned) in load_goldens() {
        // Modeled control first: the pinned fingerprint is reproducible at
        // all, independent of any scheduler change.
        let modeled = driver.run_cell(&spec);
        assert_eq!(
            modeled.fingerprint, pinned,
            "modeled replay of {file} diverged from its pinned fingerprint"
        );
        for &(workers, chunks) in &grid {
            let record = driver.run_cell(&spec.on_workers(Some(workers)).with_eval_chunks(chunks));
            assert_eq!(
                record.fingerprint,
                pinned,
                "threaded({workers},ev{chunks}) diverged from the pinned \
                 fingerprint of {file} (grid tier: {})",
                if full_grid() { "full" } else { "pruned" }
            );
        }
    }
}

/// The bound-pruned allocation scan (the default since PR 7) under the
/// persistent-worker scheduler: at 1, 4 and 8 OS workers (8 oversubscribes
/// any CI runner) the pruned engine must reproduce, bit for bit, the
/// trajectory of the legacy exhaustive scan run on the modeled backend —
/// pruning is pure strength reduction, and the scheduler must not perturb it.
#[test]
fn pruned_allocation_replays_bitwise_at_stress_worker_counts() {
    use cluster_sim::timeline::ClusterConfig;
    use sime_core::engine::{SimEConfig, SimEEngine};
    use sime_parallel::exec::Threaded;
    use sime_parallel::prelude::*;
    use vlsi_netlist::bench_suite::SuiteCircuit;
    use vlsi_place::cost::Objectives;

    let circuit = SuiteCircuit::from_name("s1196").expect("suite circuit");
    let netlist = Arc::new(circuit.generate());
    let iterations = 3;
    let config =
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iterations);
    assert!(
        config.allocation.bound_pruning,
        "bound pruning must be the default"
    );
    let pruned = SimEEngine::new(Arc::clone(&netlist), config);
    let mut legacy_cfg = config;
    legacy_cfg.allocation.bound_pruning = false;
    let legacy = SimEEngine::new(netlist, legacy_cfg);

    let ranks = 3;
    let cluster = ClusterConfig::paper_cluster(ranks);
    let cfg = Type2Config {
        ranks,
        iterations,
        pattern: RowPattern::Random,
    };
    let reference = run_type2(&legacy, cluster, cfg);
    for workers in [1usize, 4, 8] {
        let outcome = run_type2_on(&pruned, cluster, cfg, &Threaded::new(workers));
        assert_eq!(
            reference.mu_history.len(),
            outcome.mu_history.len(),
            "workers={workers}"
        );
        for (i, (a, b)) in reference
            .mu_history
            .iter()
            .zip(&outcome.mu_history)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "pruned trajectory diverged at iteration {i}, workers={workers}"
            );
        }
        assert_eq!(
            reference.best_cost.mu.to_bits(),
            outcome.best_cost.mu.to_bits(),
            "workers={workers}"
        );
        assert_eq!(
            reference.best_cost.wirelength.to_bits(),
            outcome.best_cost.wirelength.to_bits(),
            "workers={workers}"
        );
        for row in 0..reference.best_placement.num_rows() {
            assert_eq!(
                reference.best_placement.row(row),
                outcome.best_placement.row(row),
                "best placement differs in row {row}, workers={workers}"
            );
        }
    }
}

/// The island portfolio under the stress grid: a mixed 4-island race (SimE +
/// GA + SA + TS, ring migration every second epoch) replayed across the
/// pruned worker/chunk grid — including the oversubscribed (8,7) cell — must
/// reproduce the Modeled trajectory bitwise. (The blessed portfolio golden
/// additionally rides the `goldens_replay_bitwise_across_the_worker_chunk_
/// stress_grid` sweep above; this test keeps explicit coverage even if the
/// golden set changes.)
#[test]
fn portfolio_replays_bitwise_across_the_stress_grid() {
    use cluster_sim::timeline::ClusterConfig;
    use sime_core::engine::{SimEConfig, SimEEngine};
    use sime_parallel::exec::Threaded;
    use sime_parallel::prelude::*;
    use vlsi_netlist::bench_suite::SuiteCircuit;
    use vlsi_place::cost::Objectives;

    let circuit = SuiteCircuit::from_name("s1196").expect("suite circuit");
    let netlist = Arc::new(circuit.generate());
    let iterations = 4;
    let config =
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iterations);
    let engine = SimEEngine::new(netlist, config);
    let ranks = 4;
    let cluster = ClusterConfig::paper_cluster(ranks);
    let cfg = PortfolioConfig {
        ranks,
        iterations,
        migration_interval: 2,
        target_mu: None,
        mix: PortfolioMix::Mixed,
    };

    let reference = run_portfolio(&engine, cluster, cfg);
    assert_eq!(reference.iterations, iterations);
    for (workers, chunks) in stress_grid() {
        let outcome = run_portfolio_on(
            &engine,
            cluster,
            cfg,
            &Threaded::new(workers).with_eval_chunks(chunks),
        );
        for (i, (a, b)) in reference
            .mu_history
            .iter()
            .zip(&outcome.mu_history)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "portfolio trajectory diverged at epoch {i}, threaded({workers},ev{chunks})"
            );
        }
        assert_eq!(
            reference.best_cost.mu.to_bits(),
            outcome.best_cost.mu.to_bits(),
            "threaded({workers},ev{chunks})"
        );
        for row in 0..reference.best_placement.num_rows() {
            assert_eq!(
                reference.best_placement.row(row),
                outcome.best_placement.row(row),
                "best placement differs in row {row}, threaded({workers},ev{chunks})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Random epoch schedules against the inline oracle.
// ---------------------------------------------------------------------------

/// One entry of a random epoch: a leaf job, or a nested batch submitted from
/// inside the worker thread running the entry (the help-while-waiting path).
#[derive(Debug, Clone)]
enum Entry {
    Leaf(u8),
    Nested(Vec<u8>),
}

/// Deterministic leaf payload: a cheap integer mix of the entry's position
/// and value, so any mis-merged or dropped result changes the output.
fn leaf(epoch: usize, index: usize, v: u8) -> u64 {
    let x = (epoch as u64) << 32 ^ (index as u64) << 16 ^ v as u64;
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
}

/// What the schedule must produce: evaluated inline, epoch by epoch, in
/// submission order — the Modeled oracle of the pool.
fn oracle(schedule: &[Vec<Entry>]) -> Vec<Vec<u64>> {
    schedule
        .iter()
        .enumerate()
        .map(|(e, epoch)| {
            epoch
                .iter()
                .enumerate()
                .map(|(i, entry)| match entry {
                    Entry::Leaf(v) => leaf(e, i, *v),
                    Entry::Nested(inner) => inner
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| leaf(e, i ^ (j << 8), v))
                        .fold(0u64, u64::wrapping_add),
                })
                .collect()
        })
        .collect()
}

/// The same schedule on a real pool: one `run_tasks` epoch per outer batch,
/// nested batches submitted from inside the worker tasks.
fn pooled(schedule: &[Vec<Entry>], workers: usize) -> Vec<Vec<u64>> {
    let pool = Arc::new(WorkerPool::new(workers));
    schedule
        .iter()
        .enumerate()
        .map(|(e, epoch)| {
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = epoch
                .iter()
                .enumerate()
                .map(|(i, entry)| {
                    let entry = entry.clone();
                    let pool = Arc::clone(&pool);
                    Box::new(move || match entry {
                        Entry::Leaf(v) => leaf(e, i, v),
                        Entry::Nested(inner) => {
                            let nested: Vec<Box<dyn FnOnce() -> u64 + Send>> = inner
                                .iter()
                                .enumerate()
                                .map(|(j, &v)| {
                                    Box::new(move || leaf(e, i ^ (j << 8), v))
                                        as Box<dyn FnOnce() -> u64 + Send>
                                })
                                .collect();
                            pool.run_tasks(nested)
                                .into_iter()
                                .fold(0u64, u64::wrapping_add)
                        }
                    }) as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect();
            pool.run_tasks(tasks)
        })
        .collect()
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    // The vendored proptest shim has no `prop_oneof!`; pick the variant from
    // a generated selector instead.
    (
        0usize..4,
        any::<u8>(),
        proptest::collection::vec(any::<u8>(), 0..12),
    )
        .prop_map(|(kind, v, inner)| {
            if kind == 0 {
                Entry::Nested(inner)
            } else {
                Entry::Leaf(v)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random epoch schedules — random epoch count, task counts (including
    /// empty epochs), nested batches, and pool sizes up to heavy
    /// oversubscription — merge exactly like the inline oracle.
    #[test]
    fn random_epoch_schedules_match_the_inline_oracle(
        schedule in proptest::collection::vec(
            proptest::collection::vec(arb_entry(), 0..24),
            1..6,
        ),
        workers in 1usize..9,
    ) {
        let expected = oracle(&schedule);
        let actual = pooled(&schedule, workers);
        prop_assert_eq!(expected, actual);
    }
}
