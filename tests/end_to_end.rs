//! Cross-crate integration tests: full pipelines from circuit generation
//! through serial and parallel optimisation, exercising the public facade
//! API exactly as the examples and the table harnesses do.

use sime_placement::prelude::*;
use std::sync::Arc;

fn small_engine(objectives: Objectives, iterations: usize, seed: u64) -> SimEEngine {
    let netlist =
        Arc::new(CircuitGenerator::new(GeneratorConfig::sized("e2e", 180, seed)).generate());
    let mut config = SimEConfig::paper_defaults(objectives, 10, iterations);
    config.seed = seed;
    SimEEngine::new(netlist, config)
}

#[test]
fn serial_sime_improves_a_paper_circuit() {
    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 25);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);
    let result = engine.run();
    result.best_placement.validate(&netlist).unwrap();
    assert!(result.best_mu() >= result.history[0].mu);
    assert!(result.best_cost.wirelength >= engine.evaluator().bounds().wirelength_lower);
    // Allocation dominates the profile, as in Section 4 of the paper.
    assert!(result.profile.work_fraction(sime_core::Phase::Allocation) > 0.8);
}

#[test]
fn the_three_strategies_reproduce_the_papers_relative_ordering() {
    // On the same circuit and iteration budget: Type II is the fastest
    // (modeled time), Type I is no faster than serial, Type III is close to
    // serial.
    let engine = small_engine(Objectives::WirelengthPower, 8, 3);
    let compute = ClusterConfig::paper_cluster(4).compute;
    let serial = run_serial_baseline(&engine, &compute);

    let cluster = ClusterConfig::paper_cluster(4);
    let t1 = run_type1(
        &engine,
        cluster,
        Type1Config {
            ranks: 4,
            iterations: 8,
        },
    );
    let t2 = run_type2(
        &engine,
        cluster,
        Type2Config {
            ranks: 4,
            iterations: 8,
            pattern: RowPattern::Random,
        },
    );
    let t3 = run_type3(
        &engine,
        cluster,
        Type3Config {
            ranks: 4,
            iterations: 8,
            retry_threshold: 3,
        },
    );

    assert!(
        t1.modeled_seconds >= serial.modeled_seconds * 0.95,
        "Type I must not beat serial ({} vs {})",
        t1.modeled_seconds,
        serial.modeled_seconds
    );
    assert!(
        t2.modeled_seconds < serial.modeled_seconds,
        "Type II must beat serial ({} vs {})",
        t2.modeled_seconds,
        serial.modeled_seconds
    );
    assert!(
        t2.modeled_seconds < t1.modeled_seconds,
        "Type II must beat Type I"
    );
    let t3_ratio = t3.modeled_seconds / serial.modeled_seconds;
    assert!(
        (0.6..1.6).contains(&t3_ratio),
        "Type III should stay near the serial runtime, ratio {t3_ratio}"
    );
    // Type I reproduces the serial search exactly.
    assert!((t1.best_mu() - serial.best_mu()).abs() < 1e-9);
}

#[test]
fn type2_placements_stay_legal_for_both_patterns_and_objectives() {
    for objectives in [
        Objectives::WirelengthPower,
        Objectives::WirelengthPowerDelay,
    ] {
        let engine = small_engine(objectives, 5, 11);
        for pattern in [RowPattern::Fixed, RowPattern::Random] {
            let outcome = run_type2(
                &engine,
                ClusterConfig::paper_cluster(3),
                Type2Config {
                    ranks: 3,
                    iterations: 5,
                    pattern,
                },
            );
            outcome
                .best_placement
                .validate(engine.evaluator().netlist())
                .unwrap();
            assert!((0.0..=1.0).contains(&outcome.best_mu()));
        }
    }
}

/// A boxed strategy launcher, parameterised over the execution backend (used
/// by the backend-equivalence sweep below).
type StrategyRunner<'a> = Box<dyn Fn(&dyn ExecBackend) -> StrategyOutcome + 'a>;

#[test]
fn threaded_backend_is_bitwise_identical_to_modeled_for_every_strategy() {
    // The PR 3 determinism contract through the facade: for each strategy,
    // the Threaded backend at 1, 2 and 4 workers reproduces the Modeled run
    // bit for bit — best cost, modeled time, comm stats and the whole µ(s)
    // trajectory — and so does the intra-rank EvalParallelism path (PR 5).
    // Only wall-clock may differ.
    let engine = small_engine(Objectives::WirelengthPower, 6, 23);
    let cluster = ClusterConfig::paper_cluster(4);
    let runs: Vec<(&str, StrategyRunner<'_>)> = vec![
        (
            "type1",
            Box::new(|b: &dyn ExecBackend| {
                run_type1_on(
                    &engine,
                    cluster,
                    Type1Config {
                        ranks: 4,
                        iterations: 6,
                    },
                    b,
                )
            }),
        ),
        (
            "type2",
            Box::new(|b: &dyn ExecBackend| {
                run_type2_on(
                    &engine,
                    cluster,
                    Type2Config {
                        ranks: 4,
                        iterations: 6,
                        pattern: RowPattern::Random,
                    },
                    b,
                )
            }),
        ),
        (
            "type3",
            Box::new(|b: &dyn ExecBackend| {
                run_type3_on(
                    &engine,
                    cluster,
                    Type3Config {
                        ranks: 4,
                        iterations: 6,
                        retry_threshold: 3,
                    },
                    b,
                )
            }),
        ),
    ];
    for (name, run) in &runs {
        let modeled = run(&Modeled);
        assert_eq!(modeled.backend, "modeled");
        for workers in [1, 2, 4] {
            let threaded = run(&Threaded::new(workers));
            assert_eq!(threaded.backend, format!("threaded({workers})"));
            assert_eq!(
                modeled.best_cost.mu.to_bits(),
                threaded.best_cost.mu.to_bits(),
                "{name} best µ diverged at {workers} workers"
            );
            assert_eq!(
                modeled.best_cost.wirelength.to_bits(),
                threaded.best_cost.wirelength.to_bits(),
                "{name} wirelength diverged at {workers} workers"
            );
            assert_eq!(
                modeled.modeled_seconds.to_bits(),
                threaded.modeled_seconds.to_bits(),
                "{name} modeled time diverged at {workers} workers"
            );
            assert_eq!(modeled.comm, threaded.comm, "{name} comm stats diverged");
            assert_eq!(modeled.mu_history.len(), threaded.mu_history.len());
            for (i, (a, b)) in modeled
                .mu_history
                .iter()
                .zip(&threaded.mu_history)
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} µ history diverged at iteration {i}, {workers} workers"
                );
            }
            for row in 0..modeled.best_placement.num_rows() {
                assert_eq!(
                    modeled.best_placement.row(row),
                    threaded.best_placement.row(row),
                    "{name} best placement diverged in row {row} at {workers} workers"
                );
            }
        }
        for chunks in [2, 4] {
            let intra = run(&Threaded::new(2).with_eval_chunks(chunks));
            assert_eq!(intra.backend, format!("threaded(2,ev{chunks})"));
            assert_eq!(intra.eval_chunks, chunks);
            assert_eq!(
                modeled.best_cost.mu.to_bits(),
                intra.best_cost.mu.to_bits(),
                "{name} best µ diverged at {chunks} intra-rank chunks"
            );
            assert_eq!(
                modeled.modeled_seconds.to_bits(),
                intra.modeled_seconds.to_bits(),
                "{name} modeled time diverged at {chunks} intra-rank chunks"
            );
        }
    }
}

#[test]
fn netlist_roundtrip_preserves_costs() {
    // Write a paper circuit to the text format, parse it back, and check the
    // cost of the same placement is identical.
    let original = Arc::new(paper_circuit(PaperCircuit::S1238));
    let text = vlsi_netlist::format::write_netlist(&original);
    let parsed = Arc::new(vlsi_netlist::format::parse_netlist(&text).unwrap());

    let placement = Placement::round_robin(&original, 10);
    let eval_a = CostEvaluator::new(Arc::clone(&original), Objectives::WirelengthPower);
    let eval_b = CostEvaluator::new(Arc::clone(&parsed), Objectives::WirelengthPower);
    let a = eval_a.evaluate(&placement);
    let b = eval_b.evaluate(&placement);
    assert!((a.wirelength - b.wirelength).abs() < 1e-9);
    assert!((a.power - b.power).abs() < 1e-9);
    assert!((a.mu - b.mu).abs() < 1e-12);
}

#[test]
fn baseline_heuristics_run_on_the_same_cost_model_as_sime() {
    let netlist =
        Arc::new(CircuitGenerator::new(GeneratorConfig::sized("e2e_baselines", 120, 5)).generate());
    let evaluator = CostEvaluator::new(Arc::clone(&netlist), Objectives::WirelengthPower);
    let initial = Placement::round_robin(&netlist, 8);
    let initial_mu = evaluator.mu(&initial);

    let sa =
        SimulatedAnnealingPlacer::new(evaluator.clone(), SaConfig::fast(1)).run(initial.clone());
    let ga = GeneticPlacer::new(evaluator.clone(), GaConfig::fast(8, 1)).run(initial.clone());
    let ts = TabuSearchPlacer::new(evaluator.clone(), TabuConfig::fast(1)).run(initial);

    // SA and TS evolve the provided placement in place, so they can never end
    // below its quality; the GA re-decodes permutations with width balancing,
    // so it is only required to produce a legal, sensible result.
    for (name, result) in [("SA", &sa), ("TS", &ts)] {
        assert!(
            result.best_mu() + 1e-12 >= initial_mu,
            "{name} must not end below the initial quality"
        );
        result.best_placement.validate(&netlist).unwrap();
    }
    assert!(ga.best_mu() > 0.0 && ga.best_mu() <= 1.0);
    ga.best_placement.validate(&netlist).unwrap();
}

#[test]
fn thread_backed_cluster_agrees_with_a_serial_reduction() {
    // Sanity check of the message-passing substrate through the facade: a
    // gather of per-rank partial sums equals the serial sum.
    let values: Vec<u64> = (0..64).collect();
    let total: u64 = values.iter().sum();
    let per_rank: Vec<u64> = Cluster::run(4, |mut h| {
        let share: u64 = values.iter().skip(h.rank()).step_by(h.ranks()).sum();
        let gathered = h.gather_to(0, share.to_le_bytes().to_vec(), 1);
        match gathered {
            Some(parts) => parts
                .iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()))
                .sum(),
            None => 0,
        }
    });
    assert_eq!(per_rank[0], total);
}

#[test]
fn modeled_cluster_runtimes_are_scale_invariant_in_the_comparison() {
    // The Type II speed-up over serial should not depend on the absolute node
    // speed (both scale identically), only on the network/compute balance.
    let engine = small_engine(Objectives::WirelengthPower, 6, 17);
    let mut fast = ClusterConfig::paper_cluster(4);
    fast.compute = ComputeModel::fast_node();
    fast.network = NetworkModel::infinite();

    let serial_slow = run_serial_baseline(&engine, &ClusterConfig::paper_cluster(4).compute);
    let serial_fast = run_serial_baseline(&engine, &fast.compute);

    let t2_slow = run_type2(
        &engine,
        ClusterConfig::paper_cluster(4),
        Type2Config {
            ranks: 4,
            iterations: 6,
            pattern: RowPattern::Random,
        },
    );
    let t2_fast = run_type2(
        &engine,
        fast,
        Type2Config {
            ranks: 4,
            iterations: 6,
            pattern: RowPattern::Random,
        },
    );
    let speedup_slow = t2_slow.speedup_versus(serial_slow.modeled_seconds);
    let speedup_fast = t2_fast.speedup_versus(serial_fast.modeled_seconds);
    // With an infinite network the speed-up can only be at least as good.
    assert!(speedup_fast + 0.05 >= speedup_slow);
    assert!(speedup_slow > 1.0);
}
