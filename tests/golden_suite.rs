//! The golden-trajectory regression gate.
//!
//! `tests/golden/` holds checked-in trajectory fingerprints (final cost
//! bits, µ(s) bits at fixed iterations, placement/trajectory hashes) for a
//! pinned subset of the scenario matrix — see
//! `sime_parallel::batch::golden_subset`. This test replays every golden
//! file and asserts **bitwise** equality, turning the PR 2/3 determinism
//! contract into a permanent, file-backed gate: any change to the search
//! trajectory of any layer (netlist generation, cost kernels, engine
//! operators, strategy drivers, execution backends) fails here before it
//! can silently shift the reproduction's numbers.
//!
//! Intentional trajectory changes are re-blessed with:
//!
//! ```text
//! cargo run --release -p bench --bin scenario_matrix -- --bless tests/golden --golden-subset
//! ```
//!
//! and the re-bless must be called out in the PR description.

use sime_parallel::batch::{
    golden_subset, intra_rank_golden_subset, BatchDriver, ScenarioSpec, TrajectoryFingerprint,
};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Worker counts the threaded replay sweeps. CI's golden-suite matrix sets
/// `SIME_GOLDEN_WORKERS` to pin one count per matrix leg; locally the full
/// 1/2/4 sweep runs in one process.
fn replay_worker_counts() -> Vec<usize> {
    match std::env::var("SIME_GOLDEN_WORKERS") {
        Ok(v) => {
            let workers: usize = v.trim().parse().unwrap_or_else(|_| {
                panic!("SIME_GOLDEN_WORKERS must be an integer >= 1, got `{v}`")
            });
            assert!(
                workers >= 1,
                "SIME_GOLDEN_WORKERS must be >= 1, got {workers}"
            );
            vec![workers]
        }
        Err(_) => vec![1, 2, 4],
    }
}

/// Loads every golden file (spec + pinned fingerprint), sorted by filename
/// for deterministic replay order.
fn load_goldens() -> Vec<(String, ScenarioSpec, TrajectoryFingerprint)> {
    let dir = golden_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "golden"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).unwrap();
            let (spec, fingerprint) = TrajectoryFingerprint::parse_text(&text)
                .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                spec,
                fingerprint,
            )
        })
        .collect()
}

#[test]
fn golden_registry_is_complete_and_in_sync_with_the_pinned_subset() {
    // Every pinned scenario has a golden file and every golden file is a
    // pinned scenario — the registry cannot drift from the replay set.
    let goldens = load_goldens();
    let mut golden_ids: Vec<String> = goldens.iter().map(|(_, s, _)| s.id()).collect();
    let mut pinned_ids: Vec<String> = golden_subset().iter().map(ScenarioSpec::id).collect();
    golden_ids.sort();
    pinned_ids.sort();
    assert_eq!(
        golden_ids, pinned_ids,
        "tests/golden/ and sime_parallel::batch::golden_subset() disagree; \
         re-bless with `scenario_matrix --bless tests/golden --golden-subset`"
    );
    for (file, spec, _) in &goldens {
        assert_eq!(
            file,
            &format!("{}.golden", spec.id()),
            "golden filename must be the scenario id"
        );
    }
}

#[test]
fn golden_trajectories_replay_bitwise_on_the_modeled_backend() {
    let mut driver = BatchDriver::new();
    for (file, spec, pinned) in load_goldens() {
        let record = driver.run_cell(&spec);
        assert_eq!(
            record.fingerprint, pinned,
            "trajectory drift detected replaying {file}; if the change is \
             intentional, re-bless with `scenario_matrix --bless tests/golden \
             --golden-subset` and say so in the PR"
        );
    }
}

#[test]
fn golden_trajectories_replay_bitwise_on_the_threaded_backend() {
    // The determinism contract as a regression gate: every pinned
    // fingerprint must come out of the threaded backend at every worker
    // count, too. Engines are shared across worker counts through the
    // driver, so this stays a seconds-scale gate; the scenario_matrix
    // binary additionally sweeps the full grid in CI, and CI's worker-count
    // matrix pins each leg via SIME_GOLDEN_WORKERS.
    let mut driver = BatchDriver::new();
    for (file, spec, pinned) in load_goldens() {
        for &workers in &replay_worker_counts() {
            let record = driver.run_cell(&spec.on_workers(Some(workers)));
            assert_eq!(
                record.fingerprint, pinned,
                "threaded({workers}) diverged from the pinned fingerprint of {file}"
            );
        }
    }
}

#[test]
fn extended_tier_goldens_replay_bitwise_with_intra_rank_parallelism() {
    // The intra-rank extension of the contract, file-backed: the pinned
    // extended-tier scenarios (currently s9234 and s5378) replayed with the
    // EvalParallelism knob at 1, 2 and 4 chunks must reproduce the pinned
    // serial fingerprints to the bit. 1 chunk doubles as the plain threaded
    // control; 2 and 4 exercise the chunked goodness pass and trial scoring
    // at two different boundary layouts.
    let dir = golden_dir();
    let mut driver = BatchDriver::new();
    let intra = intra_rank_golden_subset();
    assert!(
        !intra.is_empty(),
        "the intra-rank golden subset must pin at least one extended-tier scenario"
    );
    for spec in intra {
        let path = dir.join(format!("{}.golden", spec.id()));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let (_, pinned) = TrajectoryFingerprint::parse_text(&text)
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
        for chunks in [1usize, 2, 4] {
            let record = driver.run_cell(&spec.on_workers(Some(2)).with_eval_chunks(chunks));
            assert_eq!(
                record.fingerprint,
                pinned,
                "threaded(2,ev{chunks}) diverged from the pinned fingerprint of {}",
                spec.id()
            );
        }
    }
}
