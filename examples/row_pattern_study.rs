//! Studies the Type II row-allocation patterns: fixed (alternating slice /
//! stride, after Kling & Banerjee) versus random re-assignment, across
//! processor counts — the comparison at the heart of the paper's Tables 2/3.
//!
//! Run with: `cargo run --release --example row_pattern_study`

use sime_placement::prelude::*;
use std::sync::Arc;

fn main() {
    let circuit = PaperCircuit::S1238;
    let netlist = Arc::new(paper_circuit(circuit));
    let serial_iterations = 120;
    let config = SimEConfig::paper_defaults(
        Objectives::WirelengthPower,
        circuit.num_rows(),
        serial_iterations,
    );
    let engine = SimEEngine::new(Arc::clone(&netlist), config);

    let compute = ClusterConfig::paper_cluster(2).compute;
    let serial = run_serial_baseline(&engine, &compute);
    println!(
        "circuit {} — serial: modeled {:.1} s, µ(s) = {:.3}\n",
        circuit,
        serial.modeled_seconds,
        serial.best_mu()
    );

    println!(
        "{:<10} {:>4} {:>12} {:>10} {:>10} {:>12}",
        "pattern", "p", "iterations", "time (s)", "speed-up", "quality %"
    );
    for pattern in [RowPattern::Fixed, RowPattern::Random] {
        for ranks in 2..=5usize {
            // The paper compensates the restricted mobility with extra
            // iterations as processors are added.
            let iterations = serial_iterations + serial_iterations / 8 * (ranks - 2);
            let outcome = run_type2(
                &engine,
                ClusterConfig::paper_cluster(ranks),
                Type2Config {
                    ranks,
                    iterations,
                    pattern,
                },
            );
            println!(
                "{:<10} {:>4} {:>12} {:>10.1} {:>10.2} {:>11.0}%",
                pattern.label(),
                ranks,
                iterations,
                outcome.modeled_seconds,
                outcome.speedup_versus(serial.modeled_seconds),
                100.0 * outcome.quality_fraction_of(serial.best_mu())
            );
        }
    }

    println!("\nexpected shape (paper, Tables 2/3): both patterns speed up as p grows; the");
    println!("random pattern converges to better qualities because every cell can reach any");
    println!("row over time instead of alternating between two fixed partitions.");
}
