//! Tour of the scenario subsystem: dump a suite circuit to the
//! Bookshelf-style interchange, reload it, run one scenario cell on both
//! execution backends through the batch driver, and print the golden
//! trajectory fingerprint that proves the two runs are bitwise identical.
//!
//! ```bash
//! cargo run --release --example scenario_tour
//! cargo run --release --example scenario_tour -- --circuit s5378
//! ```

use sime_placement::prelude::*;
use std::sync::Arc;
use vlsi_netlist::bench_suite::SuiteCircuit;
use vlsi_netlist::bookshelf::{load_bookshelf, netlists_identical, save_bookshelf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let circuit_name = args
        .iter()
        .position(|a| a == "--circuit")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "s1196".into());
    let circuit = SuiteCircuit::from_name(&circuit_name).unwrap_or_else(|| {
        eprintln!("unknown suite circuit `{circuit_name}` (try s1196 … s15850)");
        std::process::exit(2);
    });

    // 1. Generate the circuit and dump it to `.nodes`/`.nets` on disk.
    let netlist = Arc::new(circuit.generate());
    let stats = netlist.stats();
    println!(
        "{}: {} cells, {} nets, {} pins, {} rows ({} tier)",
        circuit,
        stats.cells,
        stats.nets,
        stats.pins,
        circuit.num_rows(),
        if circuit.is_extended() {
            "extended"
        } else {
            "paper"
        }
    );
    let dir = std::env::temp_dir().join("sime_scenario_tour");
    std::fs::create_dir_all(&dir).expect("create dump dir");
    let stem = dir.join(circuit.name());
    save_bookshelf(&netlist, &stem).expect("dump circuit");
    println!("dumped to {}.nodes / .nets", stem.display());

    // 2. Reload and verify the round-trip is the identity.
    let reloaded = Arc::new(load_bookshelf(&stem).expect("reload circuit"));
    assert!(
        netlists_identical(&netlist, &reloaded),
        "bookshelf round-trip must be lossless"
    );
    println!("reloaded: identical in-memory netlist ✓");

    // 3. Run one scenario cell on both backends through the batch driver.
    let spec = ScenarioSpec {
        circuit: circuit.name().to_string(),
        strategy: StrategyKind::Type2(RowPattern::Random),
        ranks: 4,
        iterations: if circuit.is_extended() { 4 } else { 8 },
        objectives: Objectives::WirelengthPower,
        workers: None,
        eval_chunks: 1,
        warm_start: None,
    };
    // Register the *reloaded* netlist so the scenario really runs on the
    // circuit that went through the dump/reload cycle (and the driver does
    // not regenerate it from scratch).
    let mut driver = BatchDriver::new();
    driver.register_netlist(Arc::clone(&reloaded));
    let modeled = driver.run_cell(&spec);
    let threaded = driver.run_cell(&spec.on_workers(Some(4)));
    println!(
        "\nscenario {}:\n  modeled      µ={:.4} modeled_time={:.2}s wall={:.2}s\n  threaded(4)  µ={:.4} modeled_time={:.2}s wall={:.2}s",
        spec.id(),
        modeled.outcome.best_cost.mu,
        modeled.outcome.modeled_seconds,
        modeled.outcome.wall_seconds,
        threaded.outcome.best_cost.mu,
        threaded.outcome.modeled_seconds,
        threaded.outcome.wall_seconds,
    );

    // 4. The determinism contract, made visible: one fingerprint.
    assert_eq!(modeled.fingerprint, threaded.fingerprint);
    println!(
        "\nbackends agree bitwise; golden fingerprint:\n{}",
        modeled.fingerprint.to_text(&spec)
    );
}
