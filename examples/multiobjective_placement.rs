//! Three-objective placement (wirelength + power + delay) of one of the
//! paper's benchmark circuits, with a convergence trace and a comparison of
//! the two- and three-objective cost functions.
//!
//! Run with: `cargo run --release --example multiobjective_placement [circuit]`
//! where `circuit` is one of s1196, s1238, s1488, s1494, s3330 (default s1238).

use sime_placement::prelude::*;
use std::sync::Arc;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s1238".to_string());
    let circuit = PaperCircuit::from_name(&name).unwrap_or_else(|| {
        eprintln!("unknown circuit `{name}`, falling back to s1238");
        PaperCircuit::S1238
    });
    let netlist = Arc::new(paper_circuit(circuit));
    println!(
        "circuit {}: {} cells, {} rows",
        circuit,
        netlist.num_cells(),
        circuit.num_rows()
    );

    let iterations = 150;
    for objectives in [
        Objectives::WirelengthPower,
        Objectives::WirelengthPowerDelay,
    ] {
        println!("\n=== objectives: {} ===", objectives.label());
        let config = SimEConfig::paper_defaults(objectives, circuit.num_rows(), iterations);
        let engine = SimEEngine::new(Arc::clone(&netlist), config);
        if objectives.includes_delay() {
            println!(
                "extracted {} critical paths (longest depth {})",
                engine.evaluator().paths().len(),
                engine.evaluator().paths().first().map_or(0, |p| p.len())
            );
        }
        let result = engine.run();

        println!("iteration    µ(s)   avg goodness   wirelength      delay");
        for h in result.history.iter().step_by(iterations / 10) {
            println!(
                "{:>9} {:>7.3} {:>14.3} {:>12.0} {:>10.3}",
                h.iteration, h.mu, h.avg_goodness, h.cost.wirelength, h.cost.delay
            );
        }
        let best = result.best_cost;
        println!(
            "best: µ(s) = {:.3}, wirelength = {:.0}, power = {:.0}, delay = {:.3}, width = {:.0}",
            best.mu, best.wirelength, best.power, best.delay, best.width
        );
        println!(
            "memberships: wire {:.2}, power {:.2}, delay {:.2}, width {:.2}",
            best.memberships.wirelength,
            best.memberships.power,
            best.memberships.delay,
            best.memberships.width
        );
    }
}
