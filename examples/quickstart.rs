//! Quickstart: generate a small circuit, run serial Simulated Evolution and
//! print the cost breakdown of the best placement.
//!
//! Run with: `cargo run --release --example quickstart`

use sime_placement::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A small synthetic circuit (200 cells, deterministic seed).
    let netlist =
        Arc::new(CircuitGenerator::new(GeneratorConfig::sized("quickstart", 200, 7)).generate());
    let stats = netlist.stats();
    println!(
        "circuit `{}`: {} cells, {} nets, avg fanout {:.2}, {} flip-flops",
        netlist.name(),
        stats.cells,
        stats.nets,
        stats.avg_fanout,
        stats.flip_flops
    );

    // 2. Serial SimE with the paper's default operators (biasless selection,
    //    windowed best-fit allocation), optimising wirelength + power.
    let config = SimEConfig::paper_defaults(Objectives::WirelengthPower, 10, 200);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);
    let result = engine.run();

    // 3. Report the result.
    let initial = &result.history[0];
    let best = &result.best_cost;
    println!("\nafter {} iterations:", result.iterations);
    println!(
        "  quality µ(s):   {:.3} (first iteration {:.3})",
        best.mu, initial.mu
    );
    println!(
        "  wirelength:     {:.0} (first iteration {:.0})",
        best.wirelength, initial.cost.wirelength
    );
    println!(
        "  power:          {:.0} (first iteration {:.0})",
        best.power, initial.cost.power
    );
    println!("  layout width:   {:.0} (limit {:.0})", best.width, {
        let fuzzy = engine.evaluator().fuzzy();
        (1.0 + fuzzy.alpha_width) * result.best_placement.avg_row_width()
    });

    // 4. The operator-level profile reproduces the paper's Section 4
    //    observation: allocation dominates the runtime.
    println!("\noperator profile (share of wall-clock time):");
    print!("{}", result.profile.to_table());
}
