//! Determinism probe: prints full seeded SimE trajectories (per-iteration µ,
//! wirelength, selection size, trial positions) at 17 significant digits.
//!
//! Capture the output before and after a performance change and `diff` it —
//! any bitwise divergence in the search trajectory shows up as a changed
//! line. This is how the allocation-free kernel was verified to preserve the
//! pre-existing seeded runs exactly.

use sime_core::engine::{SimEConfig, SimEEngine};
use std::sync::Arc;
use vlsi_netlist::generator::{CircuitGenerator, GeneratorConfig};
use vlsi_place::cost::Objectives;

fn main() {
    for (cells, seed, obj) in [
        (120usize, 6u64, Objectives::WirelengthPower),
        (150, 5, Objectives::WirelengthPower),
        (130, 7, Objectives::WirelengthPowerDelay),
    ] {
        let nl = Arc::new(
            CircuitGenerator::new(GeneratorConfig::sized("probe", cells, seed)).generate(),
        );
        let mut config = SimEConfig::fast(obj, 6, 15);
        config.seed = seed;
        let r = SimEEngine::new(nl, config).run();
        println!("cells={cells} seed={seed} obj={:?}", obj);
        for h in &r.history {
            println!(
                "  it={} mu={:.17e} wl={:.17e} sel={} tp={}",
                h.iteration, h.mu, h.cost.wirelength, h.selected, h.allocation.trial_positions
            );
        }
        println!(
            "  best mu={:.17e} wl={:.17e}",
            r.best_cost.mu, r.best_cost.wirelength
        );
    }
}
