//! Compares SimE with the Simulated Annealing, Genetic Algorithm and Tabu
//! Search baselines on the same circuit and cost model (the Section 7
//! discussion of the paper presumes such a comparison).
//!
//! Run with: `cargo run --release --example heuristic_shootout`

use sime_placement::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    println!(
        "circuit {} ({} cells, {} nets), objectives: wirelength + power\n",
        circuit,
        netlist.num_cells(),
        netlist.num_nets()
    );

    let evaluator = CostEvaluator::new(Arc::clone(&netlist), Objectives::WirelengthPower);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    use rand::SeedableRng;
    let initial = Placement::random(&netlist, circuit.num_rows(), &mut rng);
    let initial_mu = evaluator.mu(&initial);
    println!("random initial placement: µ(s) = {initial_mu:.3}");

    println!(
        "\n{:<22} {:>8} {:>12} {:>12} {:>12}",
        "heuristic", "µ(s)", "wirelength", "evaluations", "wall time"
    );

    // Simulated Evolution.
    let t = Instant::now();
    let engine = SimEEngine::new(
        Arc::clone(&netlist),
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), 150),
    );
    let sime = engine.run();
    println!(
        "{:<22} {:>8.3} {:>12.0} {:>12} {:>10.1?}",
        "Simulated Evolution",
        sime.best_cost.mu,
        sime.best_cost.wirelength,
        sime.profile.trial_positions,
        t.elapsed()
    );

    // Simulated Annealing.
    let t = Instant::now();
    let sa = SimulatedAnnealingPlacer::new(
        evaluator.clone(),
        SaConfig {
            temperature_steps: 80,
            moves_per_temperature: 200,
            seed: 7,
            ..Default::default()
        },
    )
    .run(initial.clone());
    println!(
        "{:<22} {:>8.3} {:>12.0} {:>12} {:>10.1?}",
        "Simulated Annealing",
        sa.best_mu(),
        sa.best_cost.wirelength,
        sa.evaluations,
        t.elapsed()
    );

    // Genetic Algorithm.
    let t = Instant::now();
    let ga = GeneticPlacer::new(
        evaluator.clone(),
        GaConfig {
            generations: 400,
            population: 24,
            num_rows: circuit.num_rows(),
            seed: 7,
            ..Default::default()
        },
    )
    .run(initial.clone());
    println!(
        "{:<22} {:>8.3} {:>12.0} {:>12} {:>10.1?}",
        "Genetic Algorithm",
        ga.best_mu(),
        ga.best_cost.wirelength,
        ga.evaluations,
        t.elapsed()
    );

    // Tabu Search.
    let t = Instant::now();
    let ts = TabuSearchPlacer::new(
        evaluator.clone(),
        TabuConfig {
            iterations: 300,
            candidates_per_iteration: 40,
            seed: 7,
            ..Default::default()
        },
    )
    .run(initial);
    println!(
        "{:<22} {:>8.3} {:>12.0} {:>12} {:>10.1?}",
        "Tabu Search",
        ts.best_mu(),
        ts.best_cost.wirelength,
        ts.evaluations,
        t.elapsed()
    );

    println!("\nSimE's compound moves (rip up many ill-placed cells, re-insert each at a good");
    println!("slot) typically reach a given quality with fewer cost evaluations than the");
    println!("single-move heuristics — the reason the paper considers it worth parallelizing.");
}
