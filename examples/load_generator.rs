//! Load generator for the placement server: replays the scenario matrix as
//! concurrent client traffic against an **in-process** `sime-server` and
//! reports job-latency percentiles.
//!
//! ```text
//! cargo run --release --example load_generator -- \
//!     [--jobs N] [--clients N] [--workers N] [--max-active N] [--out PATH]
//! ```
//!
//! The workload cycles the golden scenario subset (the same cells
//! `scenario_matrix` pins) into `--jobs` submissions, deals them round-robin
//! onto `--clients` concurrent sessions, submits everything up front (so the
//! admission queue engages) and measures per-job latency from submission to
//! the `done` event. The report (`--out`, default `LOAD_REPORT.json`)
//! carries p50/p90/p99/max latency and throughput; CI uploads it as an
//! artifact. Every fingerprint coming back is cross-checked against a batch
//! run in-process, so the load test doubles as a correctness sweep.

use bench::json::Json;
use sime_parallel::batch::{golden_subset, TrajectoryFingerprint};
use sime_parallel::{JobRunner, JobSpec};
use sime_server::{Event, Request, Server, ServerConfig, Session, SubmitRequest};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const EVENT_TIMEOUT: Duration = Duration::from_secs(600);

struct Args {
    jobs: usize,
    clients: usize,
    workers: usize,
    max_active: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 12,
        clients: 4,
        workers: 2,
        max_active: 3,
        out: "LOAD_REPORT.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
                .clone()
        };
        match flag.as_str() {
            "--jobs" => args.jobs = value().parse().expect("--jobs"),
            "--clients" => args.clients = value().parse().expect("--clients"),
            "--workers" => args.workers = value().parse().expect("--workers"),
            "--max-active" => args.max_active = value().parse().expect("--max-active"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.jobs >= 1 && args.clients >= 1);
    args
}

/// Nearest-rank percentile over an ascending latency slice. An empty slice
/// reports 0.0 instead of panicking: a run where no job completed (e.g. the
/// server rejected everything at admission) must still render its report
/// rather than die on the summary line.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q / 100.0) * (sorted_ms.len() as f64 - 1.0)).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let args = parse_args();
    let specs = golden_subset();
    let server = Server::new(ServerConfig {
        workers: args.workers,
        max_active: args.max_active,
        max_queue: args.jobs + 1,
        max_request_bytes: 64 * 1024,
    });

    // Batch-path reference fingerprints, computed once per distinct scenario.
    let reference: BTreeMap<String, TrajectoryFingerprint> = {
        let runner = JobRunner::new();
        specs
            .iter()
            .map(|spec| {
                let outcome = runner.run_scenario(spec).expect("reference run");
                (spec.id(), outcome.fingerprint)
            })
            .collect()
    };

    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let mismatches: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..args.clients {
            let server = Arc::clone(&server);
            let specs = &specs;
            let reference = &reference;
            let latencies = &latencies;
            let mismatches = &mismatches;
            let jobs = args.jobs;
            let clients = args.clients;
            scope.spawn(move || {
                let session = Session::new(server);
                let mut submitted_at: BTreeMap<String, Instant> = BTreeMap::new();
                for job in (0..jobs).filter(|j| j % clients == client) {
                    let spec = &specs[job % specs.len()];
                    let id = format!("c{client}-j{job}");
                    submitted_at.insert(id.clone(), Instant::now());
                    session.request(Request::Submit(SubmitRequest {
                        id,
                        spec: JobSpec::batch(spec.clone()),
                    }));
                }
                let mut done = 0;
                while done < submitted_at.len() {
                    match session.next_event(EVENT_TIMEOUT) {
                        Some(Event::Done {
                            id,
                            scenario,
                            fingerprint,
                            ..
                        }) => {
                            let elapsed = submitted_at[&id].elapsed();
                            latencies.lock().unwrap().push(elapsed.as_secs_f64() * 1e3);
                            let (_, fp) = TrajectoryFingerprint::parse_text(&fingerprint)
                                .expect("parsable fingerprint");
                            if reference.get(&scenario) != Some(&fp) {
                                mismatches
                                    .lock()
                                    .unwrap()
                                    .push(format!("{id} ({scenario})"));
                            }
                            done += 1;
                        }
                        Some(Event::Accepted { .. }) | Some(Event::Progress { .. }) => {}
                        other => panic!("client {client}: unexpected event {other:?}"),
                    }
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    server.drain();

    let mismatches = mismatches.into_inner().unwrap();
    assert!(
        mismatches.is_empty(),
        "fingerprints diverged under load: {mismatches:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.active, 0, "leaked active slot");
    assert_eq!(server.pool().queued_jobs(), 0, "leaked pool work");

    let mut sorted = latencies.into_inner().unwrap();
    assert_eq!(sorted.len(), args.jobs, "every job must complete");
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut latency = BTreeMap::new();
    latency.insert(
        "p50_ms".to_string(),
        Json::Number(percentile(&sorted, 50.0)),
    );
    latency.insert(
        "p90_ms".to_string(),
        Json::Number(percentile(&sorted, 90.0)),
    );
    latency.insert(
        "p99_ms".to_string(),
        Json::Number(percentile(&sorted, 99.0)),
    );
    latency.insert(
        "max_ms".to_string(),
        Json::Number(*sorted.last().expect("non-empty")),
    );
    let mut report = BTreeMap::new();
    report.insert("schema_version".to_string(), Json::Number(1.0));
    report.insert(
        "report".to_string(),
        Json::String("LOAD_REPORT".to_string()),
    );
    report.insert("jobs".to_string(), Json::Number(args.jobs as f64));
    report.insert("clients".to_string(), Json::Number(args.clients as f64));
    report.insert("workers".to_string(), Json::Number(args.workers as f64));
    report.insert(
        "max_active".to_string(),
        Json::Number(args.max_active as f64),
    );
    report.insert("wall_seconds".to_string(), Json::Number(wall));
    report.insert(
        "throughput_jobs_per_s".to_string(),
        Json::Number(args.jobs as f64 / wall.max(1e-9)),
    );
    report.insert("latency".to_string(), Json::Object(latency));
    let rendered = Json::Object(report).to_string();
    std::fs::write(&args.out, format!("{rendered}\n")).expect("write report");

    println!(
        "load_generator: {} jobs, {} clients, {} workers → p50 {:.1} ms, p99 {:.1} ms, {:.2} jobs/s ({})",
        args.jobs,
        args.clients,
        args.workers,
        percentile(&sorted, 50.0),
        percentile(&sorted, 99.0),
        args.jobs as f64 / wall.max(1e-9),
        args.out
    );
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_of_an_empty_slice_is_zero_not_a_panic() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
    }

    #[test]
    fn percentile_picks_the_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 50.0), 3.0);
        assert_eq!(percentile(&sorted, 100.0), 5.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }
}
