//! Runs all three parallelization strategies on the same circuit and
//! compares their modeled cluster runtimes and reached qualities against the
//! serial baseline — a one-screen summary of the paper's message.
//!
//! Run with: `cargo run --release --example parallel_strategies`

use sime_placement::prelude::*;
use std::sync::Arc;

fn main() {
    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let iterations = 120;
    let config =
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iterations);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);

    println!(
        "circuit {} ({} cells), {} iterations, simulated 2 GHz P4 cluster on fast Ethernet\n",
        circuit,
        netlist.num_cells(),
        iterations
    );

    let compute = ClusterConfig::paper_cluster(2).compute;
    let serial = run_serial_baseline(&engine, &compute);
    println!(
        "{:<28} {:>12} {:>10} {:>10}",
        "strategy", "modeled time", "speed-up", "µ(s)"
    );
    println!(
        "{:<28} {:>10.1} s {:>10.2} {:>10.3}",
        "serial SimE",
        serial.modeled_seconds,
        1.0,
        serial.best_mu()
    );

    let ranks = 4;
    let cluster = ClusterConfig::paper_cluster(ranks);

    let t1 = run_type1(&engine, cluster, Type1Config { ranks, iterations });
    println!(
        "{:<28} {:>10.1} s {:>10.2} {:>10.3}",
        "Type I  (low-level, p=4)",
        t1.modeled_seconds,
        t1.speedup_versus(serial.modeled_seconds),
        t1.best_mu()
    );

    for pattern in [RowPattern::Fixed, RowPattern::Random] {
        let t2 = run_type2(
            &engine,
            cluster,
            Type2Config {
                ranks,
                iterations,
                pattern,
            },
        );
        println!(
            "{:<28} {:>10.1} s {:>10.2} {:>10.3}",
            format!("Type II ({} rows, p=4)", pattern.label()),
            t2.modeled_seconds,
            t2.speedup_versus(serial.modeled_seconds),
            t2.best_mu()
        );
    }

    let t3 = run_type3(
        &engine,
        cluster,
        Type3Config {
            ranks,
            iterations,
            retry_threshold: 10,
        },
    );
    println!(
        "{:<28} {:>10.1} s {:>10.2} {:>10.3}",
        "Type III (coop. search, p=4)",
        t3.modeled_seconds,
        t3.speedup_versus(serial.modeled_seconds),
        t3.best_mu()
    );

    println!("\nreading the table:");
    println!(" * Type I  — same search as serial, no speed-up (allocation is not distributed).");
    println!(" * Type II — the only strategy with a real speed-up; quality can trail serial.");
    println!(" * Type III — runtime stays serial-level; quality is the best of several seeds.");
}
