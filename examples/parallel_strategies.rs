//! Runs all three parallelization strategies on the same circuit and
//! compares their modeled cluster runtimes and reached qualities against the
//! serial baseline — a one-screen summary of the paper's message.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example parallel_strategies -- [OPTIONS]
//!
//! Options:
//!   --backend <modeled|threaded>  execution backend (default: modeled)
//!   --workers <N>                 OS worker threads for the threaded
//!                                 backend (default: 4; ignored by modeled)
//!   --eval-chunks <N>             intra-rank EvalParallelism chunks on the
//!                                 threaded backend (default: 1 = serial)
//!   --iterations <N>              SimE iterations per strategy (default: 120)
//!   --help                        print this help text
//! ```
//!
//! The backend never changes the results — seeded runs are bitwise identical
//! on `modeled` and on `threaded` at any worker count (the determinism
//! contract of `sime_parallel::exec`). What changes is the host wall-clock
//! column: with `--backend threaded` the per-rank work of each iteration
//! executes on real OS threads.

use sime_placement::prelude::*;
use std::sync::Arc;

const HELP: &str = "\
Usage: parallel_strategies [--backend modeled|threaded] [--workers N] [--iterations N]

Runs the paper's Type I/II/III parallel SimE strategies on the s1196 stand-in
circuit and prints modeled cluster runtime, speed-up and reached quality per
strategy, plus the host wall-clock time of each run.

Options:
  --backend <modeled|threaded>  execution backend (default: modeled)
  --workers <N>                 OS worker threads for --backend threaded
                                (default: 4; ignored by the modeled backend)
  --eval-chunks <N>             intra-rank EvalParallelism chunks for
                                --backend threaded (default: 1 = serial)
  --iterations <N>              SimE iterations per strategy (default: 120)
  --help                        print this help text

Seeded results are bitwise identical across backends, worker counts and
eval-chunk counts; only wall-clock time changes (see DESIGN.md §4, the
determinism contract and its intra-rank extension).";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let backend_name = arg("--backend").unwrap_or_else(|| "modeled".into());
    let workers: usize = arg("--workers").and_then(|v| v.parse().ok()).unwrap_or(4);
    let eval_chunks: usize = arg("--eval-chunks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let iterations: usize = arg("--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let backend = match backend_from_spec(&backend_name, workers, eval_chunks) {
        Some(b) => b,
        None => {
            eprintln!("unknown backend '{backend_name}' (expected 'modeled' or 'threaded')\n");
            eprintln!("{HELP}");
            std::process::exit(2);
        }
    };

    let circuit = PaperCircuit::S1196;
    let netlist = Arc::new(paper_circuit(circuit));
    let config =
        SimEConfig::paper_defaults(Objectives::WirelengthPower, circuit.num_rows(), iterations);
    let engine = SimEEngine::new(Arc::clone(&netlist), config);

    println!(
        "circuit {} ({} cells), {} iterations, simulated 2 GHz P4 cluster on fast Ethernet",
        circuit,
        netlist.num_cells(),
        iterations
    );
    println!("execution backend: {}\n", backend.label());

    let compute = ClusterConfig::paper_cluster(2).compute;
    let serial = run_serial_baseline(&engine, &compute);
    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>12}",
        "strategy", "modeled time", "speed-up", "µ(s)", "wall-clock"
    );
    println!(
        "{:<28} {:>10.1} s {:>10.2} {:>10.3} {:>12}",
        "serial SimE",
        serial.modeled_seconds,
        1.0,
        serial.best_mu(),
        "-"
    );

    let ranks = 4;
    let cluster = ClusterConfig::paper_cluster(ranks);
    let row = |label: &str, outcome: &StrategyOutcome| {
        println!(
            "{:<28} {:>10.1} s {:>10.2} {:>10.3} {:>9.0} ms",
            label,
            outcome.modeled_seconds,
            outcome.speedup_versus(serial.modeled_seconds),
            outcome.best_mu(),
            outcome.wall_seconds * 1e3
        );
    };

    let t1 = run_type1_on(
        &engine,
        cluster,
        Type1Config { ranks, iterations },
        backend.as_ref(),
    );
    row("Type I  (low-level, p=4)", &t1);

    for pattern in [RowPattern::Fixed, RowPattern::Random] {
        let t2 = run_type2_on(
            &engine,
            cluster,
            Type2Config {
                ranks,
                iterations,
                pattern,
            },
            backend.as_ref(),
        );
        row(&format!("Type II ({} rows, p=4)", pattern.label()), &t2);
    }

    let t3 = run_type3_on(
        &engine,
        cluster,
        Type3Config {
            ranks,
            iterations,
            retry_threshold: 10,
        },
        backend.as_ref(),
    );
    row("Type III (coop. search, p=4)", &t3);

    println!("\nreading the table:");
    println!(" * Type I  — same search as serial, no speed-up (allocation is not distributed).");
    println!(" * Type II — the only strategy with a real speed-up; quality can trail serial.");
    println!(" * Type III — runtime stays serial-level; quality is the best of several seeds.");
    println!(
        " * modeled time/speed-up/µ(s) are backend-invariant; wall-clock is the host cost\n   \
         of the run under the '{}' backend.",
        backend.label()
    );
}
